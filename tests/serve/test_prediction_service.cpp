#include "serve/prediction_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "core/variants.hpp"
#include "data/c3o_generator.hpp"
#include "serve/serve.hpp"

namespace bellamy::serve {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 83;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
    model.emplace(core::BellamyConfig{}, 17);
    core::PreTrainConfig pre;
    pre.epochs = 80;
    core::pretrain(*model, ds.runs(), pre);
  }

  /// A deterministic query stream: the context template with scale-outs
  /// swept 1..60.
  std::vector<data::JobRun> make_queries(std::size_t n) const {
    std::vector<data::JobRun> queries;
    queries.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      data::JobRun q = ds.runs().front();
      q.scale_out = static_cast<int>(1 + i % 60);
      queries.push_back(std::move(q));
    }
    return queries;
  }

  data::Dataset ds;
  std::optional<core::BellamyModel> model;
};

core::FineTuneConfig quick_finetune() {
  core::FineTuneConfig cfg;
  cfg.max_epochs = 100;
  cfg.patience = 50;
  return cfg;
}

// The acceptance-criteria soak: >= 8 concurrent client threads with
// randomized arrival, every response bit-identical to a serial
// predict-one-by-one loop over the same stream, and exactly one response per
// request (nothing lost, nothing duplicated, nothing cross-wired — a value
// landing on the wrong request would break bit-identity, because every
// scale-out predicts differently).
TEST(PredictionService, ConcurrentSoakIsBitIdenticalToSerialLoop) {
  Fixture fx;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 48;

  const std::vector<data::JobRun> queries = fx.make_queries(kThreads * kPerThread);
  // Serial reference BEFORE publishing: the per-sample loop on the source.
  std::vector<double> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expected[i] = fx.model->predict_one(queries[i]);
  }

  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "soak"}, *fx.model).unwrap();

  ServiceConfig cfg;
  cfg.max_batch = 16;
  cfg.max_queue = 64;
  cfg.flush_deadline = std::chrono::microseconds(200);
  cfg.workers = 2;
  PredictionService service(registry, cfg);

  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(1234 + t));
      std::uniform_int_distribution<int> jitter_us(0, 120);
      std::uniform_int_distribution<int> coin(0, 3);
      // A small async window per client so micro-batches actually fill.
      std::vector<std::pair<std::size_t, std::future<ServeResult<double>>>> window;
      auto drain_one = [&] {
        auto [index, future] = std::move(window.front());
        window.erase(window.begin());
        ServeResult<double> r = future.get();
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        responses.fetch_add(1);
        if (r.value() != expected[index]) mismatches.fetch_add(1);
      };
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t index = t * kPerThread + i;
        window.emplace_back(index, service.predict_async(handle, queries[index]));
        if (window.size() >= 8) drain_one();
        if (coin(rng) == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(jitter_us(rng)));
        }
      }
      while (!window.empty()) drain_one();
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(responses.load(), queries.size());  // one response per request

  const ServeMetrics m = service.metrics(handle).unwrap();
  EXPECT_EQ(m.requests, queries.size());
  EXPECT_EQ(m.responses, queries.size());
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_GE(m.batches, 1u);
  EXPECT_LE(m.batches, m.responses);
  EXPECT_LE(m.max_queue_depth, cfg.max_queue);
}

TEST(PredictionService, CoalescesBurstsIntoFullBatches) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "burst"}, *fx.model).unwrap();

  ServiceConfig cfg;
  cfg.max_batch = 16;
  cfg.flush_deadline = std::chrono::seconds(10);  // only full batches may flush
  cfg.workers = 1;
  PredictionService service(registry, cfg);

  const std::vector<data::JobRun> queries = fx.make_queries(64);
  std::vector<std::future<ServeResult<double>>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(service.predict_async(handle, q));
  for (auto& f : futures) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.error_text();
  }

  const ServeMetrics m = service.metrics(handle).unwrap();
  EXPECT_EQ(m.responses, 64u);
  EXPECT_EQ(m.batches, 4u);  // 64 requests / full batches of 16
  EXPECT_EQ(m.coalesced, 64u);
  EXPECT_EQ(m.deadline_flushes, 0u);
  EXPECT_DOUBLE_EQ(m.mean_batch_fill(), 16.0);
}

TEST(PredictionService, DeadlineFlushesAPartialBatch) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "deadline"}, *fx.model).unwrap();

  ServiceConfig cfg;
  cfg.max_batch = 1000;  // a single request can never fill a batch
  cfg.flush_deadline = std::chrono::milliseconds(5);
  PredictionService service(registry, cfg);

  const data::JobRun query = fx.make_queries(1)[0];
  const auto r = service.predict(handle, query);
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.value(), fx.model->predict_one(query));

  const ServeMetrics m = service.metrics(handle).unwrap();
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.deadline_flushes, 1u);
  EXPECT_EQ(m.coalesced, 0u);  // a batch of one shared nothing
}

TEST(PredictionService, TypedErrorsForUnknownAndUnfittedHandles) {
  Fixture fx;
  ModelRegistry registry;
  PredictionService service(registry);

  const data::JobRun query = fx.make_queries(1)[0];
  EXPECT_EQ(service.predict(ModelHandle{}, query).status(), ServeStatus::kUnknownModel);
  EXPECT_EQ(service.metrics(ModelHandle{}).status(), ServeStatus::kUnknownModel);

  const ModelHandle reserved = registry.reserve({"sgd", "pending"}).unwrap();
  const auto r = service.predict(reserved, query);
  ASSERT_EQ(r.status(), ServeStatus::kNotFitted);
  EXPECT_NE(r.message().find("sgd/pending"), std::string::npos) << r.message();

  // predict_many surfaces the first per-request error.
  const auto many = service.predict_many(reserved, fx.make_queries(3));
  EXPECT_EQ(many.status(), ServeStatus::kNotFitted);
  // ...and an empty batch succeeds trivially.
  EXPECT_TRUE(service.predict_many(reserved, {}).ok());
}

TEST(PredictionService, StopDrainsAcceptedRequestsAndRejectsNewOnes) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "stop"}, *fx.model).unwrap();

  ServiceConfig cfg;
  cfg.max_batch = 1000;
  cfg.flush_deadline = std::chrono::seconds(10);  // parked until stop() drains
  PredictionService service(registry, cfg);

  const std::vector<data::JobRun> queries = fx.make_queries(12);
  std::vector<std::future<ServeResult<double>>> futures;
  for (const auto& q : queries) futures.push_back(service.predict_async(handle, q));
  service.stop();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.error_text();  // accepted requests are never lost
    EXPECT_EQ(r.value(), fx.model->predict_one(queries[i]));
  }
  EXPECT_EQ(service.predict(handle, queries[0]).status(), ServeStatus::kShutdown);
}

TEST(PredictionService, RefitHotSwapsBetweenMicroBatches) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "swap"}, *fx.model).unwrap();
  PredictionService service(registry);

  const data::JobRun query = fx.make_queries(1)[0];
  EXPECT_EQ(service.predict(handle, query).unwrap(), fx.model->predict_one(query));

  // Refit on a few target-context runs; the service must serve the NEW
  // weights afterwards, bit-identically to the legacy fine-tune recipe.
  const auto groups = fx.ds.contexts();
  const std::vector<data::JobRun> observed(groups.front().runs.begin(),
                                           groups.front().runs.begin() + 3);
  registry.refit(handle, observed, quick_finetune()).expect();

  auto reference = core::BellamyModel::from_checkpoint(*registry.base_checkpoint(handle));
  const core::FineTuneConfig cfg = core::apply_reuse_strategy(
      core::ReuseStrategy::kPartialUnfreeze, reference, quick_finetune());
  core::finetune(reference, observed, cfg);

  EXPECT_EQ(service.predict(handle, query).unwrap(), reference.predict_one(query));

  const ServeMetrics m = service.metrics(handle).unwrap();
  // Two distinct weight states were served: the pool deserialized a replica
  // for each, and the second acquire observed the stamp change.
  EXPECT_GE(m.replica_misses, 2u);
  EXPECT_GE(m.replica_invalidations, 1u);
}

TEST(PredictionService, ManyQueriesMatchLegacyBatchPredictions) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "many"}, *fx.model).unwrap();
  PredictionService service(registry);

  const std::vector<data::JobRun> queries = fx.make_queries(100);
  const auto served = service.predict_many(handle, queries);
  ASSERT_TRUE(served.ok()) << served.error_text();
  const std::vector<double> direct = fx.model->predict_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(served.value()[i], direct[i]);
  }
}

}  // namespace
}  // namespace bellamy::serve
