// LatencyHistogram: bucket geometry and quantile behavior.  The contract is
// HdrHistogram-style log-linear buckets — exact below 8 us, <= 12.5%
// relative error above — with O(1) allocation-free record().

#include "serve/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace bellamy::serve {
namespace {

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t us = 0; us < 8; ++us) {
    EXPECT_EQ(LatencyHistogram::bucket_index(us), us);
    EXPECT_EQ(LatencyHistogram::bucket_upper_us(us), us);
  }
}

TEST(LatencyHistogram, BucketsAreMonotoneAndSelfConsistent) {
  // Every value maps into a bucket whose upper bound is >= the value, and
  // the NEXT bucket's upper bound is strictly larger: the bucket function
  // is a monotone step partition of the value axis.
  std::uint64_t prev_upper = 0;
  for (std::size_t i = 1; i < LatencyHistogram::kBuckets; ++i) {
    const std::uint64_t upper = LatencyHistogram::bucket_upper_us(i);
    EXPECT_GT(upper, prev_upper) << "bucket " << i;
    prev_upper = upper;
  }
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 20000; ++trial) {
    // Log-uniform values below the clamp range (values past the top bucket
    // — beyond ~134 s — saturate into it; HugeValuesClampIntoTheLastBucket
    // covers those).
    const int bits = static_cast<int>(rng() % 25);
    const std::uint64_t us = (std::uint64_t{1} << bits) + rng() % ((std::uint64_t{1} << bits));
    const std::size_t i = LatencyHistogram::bucket_index(us);
    ASSERT_LT(i, LatencyHistogram::kBuckets);
    EXPECT_LE(us, LatencyHistogram::bucket_upper_us(i))
        << us << " above its bucket's upper bound";
    if (i > 8 && i + 1 < LatencyHistogram::kBuckets) {
      EXPECT_GT(us, LatencyHistogram::bucket_upper_us(i - 1))
          << us << " below its bucket's lower bound";
    }
  }
}

TEST(LatencyHistogram, RelativeErrorIsBounded) {
  // Reported quantile value (the bucket upper bound) overshoots the true
  // value by at most 12.5% above the exact range.
  for (std::uint64_t us = 8; us < (1u << 20); us = us * 9 / 8 + 1) {
    const std::uint64_t reported =
        LatencyHistogram::bucket_upper_us(LatencyHistogram::bucket_index(us));
    EXPECT_GE(reported, us);
    EXPECT_LE(static_cast<double>(reported - us), 0.125 * static_cast<double>(us) + 1.0)
        << "value " << us << " reported as " << reported;
  }
}

TEST(LatencyHistogram, QuantilesOfAKnownDistribution) {
  LatencyHistogram h;
  // 100 samples: 1..100 us.  p50 -> 50, p99 -> 99 (within bucket error;
  // these values are below 128 so buckets are at most 8 us wide).
  for (std::uint64_t us = 1; us <= 100; ++us) h.record(us);
  EXPECT_EQ(h.count(), 100u);
  const std::uint64_t p50 = h.quantile_us(0.50);
  const std::uint64_t p99 = h.quantile_us(0.99);
  EXPECT_GE(p50, 50u);
  EXPECT_LE(p50, 57u);  // bucket upper bound of the rank-50 sample
  EXPECT_GE(p99, 99u);
  EXPECT_LE(p99, 111u);
  EXPECT_LE(h.quantile_us(0.0), p50);
  EXPECT_LE(p50, h.quantile_us(0.95));
  EXPECT_LE(h.quantile_us(0.95), h.quantile_us(1.0));
}

TEST(LatencyHistogram, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_us(0.99), 0u);
  h.record(5000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.quantile_us(0.5), 5000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_us(0.99), 0u);
}

TEST(LatencyHistogram, HugeValuesClampIntoTheLastBucket) {
  LatencyHistogram h;
  h.record(~std::uint64_t{0});  // ~584000 years in microseconds
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.quantile_us(1.0), 0u);  // lands in the top bucket, no overflow
}

}  // namespace
}  // namespace bellamy::serve
