#include "serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "serve/serve.hpp"

namespace bellamy::serve {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 61;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
    const auto groups = ds.contexts();
    target_runs = groups.front().runs;
    rest = ds.exclude_context(groups.front().key);
  }

  core::BellamyModel pretrained(std::uint64_t seed) const {
    core::BellamyModel model(core::BellamyConfig{}, seed);
    core::PreTrainConfig pre;
    pre.epochs = 100;
    core::pretrain(model, rest.runs(), pre);
    return model;
  }

  data::Dataset ds;
  std::vector<data::JobRun> target_runs;
  data::Dataset rest;
};

core::FineTuneConfig quick_finetune() {
  core::FineTuneConfig cfg;
  cfg.max_epochs = 120;
  cfg.patience = 60;
  return cfg;
}

TEST(ModelRegistry, PublishFindAndIntrospect) {
  Fixture fx;
  ModelRegistry registry;
  const core::BellamyModel model = fx.pretrained(1);

  const auto published = registry.publish({"sgd", "ctx-a"}, model);
  ASSERT_TRUE(published.ok()) << published.error_text();
  const ModelHandle handle = published.value();
  EXPECT_TRUE(static_cast<bool>(handle));

  const auto found = registry.find({"sgd", "ctx-a"});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), handle);

  EXPECT_TRUE(registry.fitted(handle));
  EXPECT_EQ(registry.state_stamp(handle), model.state_stamp());
  EXPECT_EQ(registry.size(), 1u);
  ASSERT_EQ(registry.keys().size(), 1u);
  EXPECT_EQ(registry.keys()[0].str(), "sgd/ctx-a");
}

TEST(ModelRegistry, PublishToExistingKeyHotSwapsSameHandle) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle h1 = registry.publish({"sgd", "ctx"}, fx.pretrained(1)).unwrap();
  const std::uint64_t stamp1 = registry.state_stamp(h1);

  const ModelHandle h2 = registry.publish({"sgd", "ctx"}, fx.pretrained(2)).unwrap();
  EXPECT_EQ(h1, h2);  // stable handle across the weight swap
  EXPECT_NE(registry.state_stamp(h1), stamp1);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistry, FindUnknownKeyIsTyped) {
  ModelRegistry registry;
  const auto missing = registry.find({"sgd", "nope"});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status(), ServeStatus::kUnknownModel);
}

TEST(ModelRegistry, EmptyKeyPartsRejected) {
  Fixture fx;
  ModelRegistry registry;
  EXPECT_EQ(registry.publish({"", "ctx"}, fx.pretrained(1)).status(),
            ServeStatus::kInvalidArgument);
  EXPECT_EQ(registry.reserve({"sgd", ""}).status(), ServeStatus::kInvalidArgument);
}

TEST(ModelRegistry, DeriveSharesTheBaseCheckpointObject) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle base = registry.publish({"sgd", "cloud"}, fx.pretrained(3)).unwrap();
  const ModelHandle derived = registry.derive(base, {"sgd", "cluster"}).unwrap();

  // The checkpoint is shared, not copied: both handles point at the SAME
  // object, and both start serving the same weights.
  EXPECT_EQ(registry.base_checkpoint(base).get(), registry.base_checkpoint(derived).get());
  EXPECT_EQ(registry.state_stamp(base), registry.state_stamp(derived));
  EXPECT_TRUE(registry.fitted(derived));

  // Deriving onto a taken key or from an unknown base is a typed error.
  EXPECT_EQ(registry.derive(base, {"sgd", "cloud"}).status(), ServeStatus::kInvalidArgument);
  EXPECT_EQ(registry.derive(ModelHandle{}, {"sgd", "x"}).status(),
            ServeStatus::kUnknownModel);
}

TEST(ModelRegistry, RefitMatchesTheLegacyPredictorBitExactly) {
  Fixture fx;
  ModelRegistry registry;
  const core::BellamyModel model = fx.pretrained(4);
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, model).unwrap();

  const std::vector<data::JobRun> observed(fx.target_runs.begin(), fx.target_runs.begin() + 3);
  const auto refit = registry.refit(handle, observed, quick_finetune());
  ASSERT_TRUE(refit.ok()) << refit.error_text();
  EXPECT_GT(refit.value().epochs_run, 0u);

  // Same recipe, legacy path: restart from the checkpoint, same strategy,
  // same config.  Predictions must agree bit-for-bit.
  core::BellamyPredictor legacy(model, quick_finetune());
  legacy.fit(observed);

  PredictionService service(registry);
  for (std::size_t i = 4; i < 8; ++i) {
    const auto served = service.predict(handle, fx.target_runs[i]);
    ASSERT_TRUE(served.ok()) << served.error_text();
    EXPECT_EQ(served.value(), legacy.predict(fx.target_runs[i]));
  }
}

TEST(ModelRegistry, RefitWithoutRunsResetsToTheBaseWeights) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, fx.pretrained(5)).unwrap();
  const std::uint64_t base_stamp = registry.state_stamp(handle);

  const std::vector<data::JobRun> observed(fx.target_runs.begin(), fx.target_runs.begin() + 3);
  registry.refit(handle, observed, quick_finetune()).expect();
  EXPECT_NE(registry.state_stamp(handle), base_stamp);

  registry.refit(handle, {}, quick_finetune()).expect();  // direct reuse
  EXPECT_EQ(registry.state_stamp(handle), base_stamp);
}

TEST(ModelRegistry, ReserveIsUnfittedUntilPublish) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.reserve({"sgd", "pending"}).unwrap();
  EXPECT_FALSE(registry.fitted(handle));
  EXPECT_EQ(registry.state_stamp(handle), 0u);
  EXPECT_EQ(registry.base_checkpoint(handle), nullptr);
  EXPECT_EQ(registry.refit(handle, {}, quick_finetune()).status(), ServeStatus::kNotFitted);

  // publish onto the reserved key keeps the handle and makes it serveable.
  const ModelHandle same = registry.publish({"sgd", "pending"}, fx.pretrained(6)).unwrap();
  EXPECT_EQ(same, handle);
  EXPECT_TRUE(registry.fitted(handle));
}

TEST(ModelRegistry, EraseRetiresTheHandle) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, fx.pretrained(7)).unwrap();
  registry.erase(handle).expect();

  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.fitted(handle));
  EXPECT_EQ(registry.resolve(handle), nullptr);
  EXPECT_EQ(registry.find({"sgd", "ctx"}).status(), ServeStatus::kUnknownModel);
  EXPECT_EQ(registry.erase(handle).status(), ServeStatus::kUnknownModel);
}

TEST(ModelRegistry, StoreBackedOpenPersistAndSharing) {
  Fixture fx;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bellamy_registry_" + std::to_string(::getpid())))
          .string();
  auto store = std::make_shared<core::ModelStore>(dir);

  const core::BellamyModel model = fx.pretrained(8);
  std::vector<double> expected;
  {
    ModelRegistry provider(store);
    const ModelHandle handle = provider.publish({"sgd", "v1"}, model).unwrap();
    provider.persist(handle).expect();
    // persisting an unfitted entry is a typed error
    const ModelHandle empty = provider.reserve({"sgd", "empty"}).unwrap();
    EXPECT_EQ(provider.persist(empty).status(), ServeStatus::kNotFitted);
  }

  ModelRegistry consumer(store);
  // A route reserved before the open must still be materialized from the
  // store (regression: the early-return used to hand back the empty entry).
  const ModelHandle reserved = consumer.reserve({"sgd", "v1"}).unwrap();
  EXPECT_FALSE(consumer.fitted(reserved));
  const auto opened = consumer.open({"sgd", "v1"});
  ASSERT_TRUE(opened.ok()) << opened.error_text();
  EXPECT_EQ(opened.value(), reserved);  // same handle, now serveable
  EXPECT_EQ(consumer.state_stamp(opened.value()), model.state_stamp());
  // Re-opening the key reuses the materialized entry (same handle).
  EXPECT_EQ(consumer.open({"sgd", "v1"}).unwrap(), opened.value());

  const auto missing = consumer.open({"sgd", "v2"});
  ASSERT_EQ(missing.status(), ServeStatus::kUnknownModel);
  EXPECT_NE(missing.message().find(store->path_for("sgd", "v2")), std::string::npos)
      << missing.message();

  ModelRegistry storeless;
  EXPECT_EQ(storeless.open({"sgd", "v1"}).status(), ServeStatus::kInvalidArgument);
  EXPECT_EQ(storeless.persist(storeless.reserve({"a", "b"}).unwrap()).status(),
            ServeStatus::kInvalidArgument);

  std::filesystem::remove_all(dir);
}

TEST(ModelRegistry, ServingModelAdapterDrivesTheFacade) {
  Fixture fx;
  ModelRegistry registry;
  const core::BellamyModel model = fx.pretrained(9);
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, model).unwrap();
  PredictionService service(registry);

  ServingModel adapter(registry, service, handle, quick_finetune(),
                       core::ReuseStrategy::kPartialUnfreeze, "Bellamy(serve)");
  EXPECT_EQ(adapter.name(), "Bellamy(serve)");
  EXPECT_EQ(adapter.min_training_points(), 0u);

  const std::vector<data::JobRun> observed(fx.target_runs.begin(), fx.target_runs.begin() + 3);
  adapter.fit(observed);
  EXPECT_GT(adapter.last_fit().epochs_run, 0u);

  core::BellamyPredictor legacy(model, quick_finetune());
  legacy.fit(observed);
  const std::vector<data::JobRun> queries(fx.target_runs.begin() + 4,
                                          fx.target_runs.begin() + 8);
  const auto via_adapter = adapter.predict_batch(queries);
  const auto via_legacy = legacy.predict_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(via_adapter[i], via_legacy[i]);
  }
}

}  // namespace
}  // namespace bellamy::serve
