#include "serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <memory>

#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "serve/serve.hpp"

namespace bellamy::serve {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 61;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
    const auto groups = ds.contexts();
    target_runs = groups.front().runs;
    rest = ds.exclude_context(groups.front().key);
  }

  core::BellamyModel pretrained(std::uint64_t seed) const {
    core::BellamyModel model(core::BellamyConfig{}, seed);
    core::PreTrainConfig pre;
    pre.epochs = 100;
    core::pretrain(model, rest.runs(), pre);
    return model;
  }

  data::Dataset ds;
  std::vector<data::JobRun> target_runs;
  data::Dataset rest;
};

core::FineTuneConfig quick_finetune() {
  core::FineTuneConfig cfg;
  cfg.max_epochs = 120;
  cfg.patience = 60;
  return cfg;
}

TEST(ModelRegistry, PublishFindAndIntrospect) {
  Fixture fx;
  ModelRegistry registry;
  const core::BellamyModel model = fx.pretrained(1);

  const auto published = registry.publish({"sgd", "ctx-a"}, model);
  ASSERT_TRUE(published.ok()) << published.error_text();
  const ModelHandle handle = published.value();
  EXPECT_TRUE(static_cast<bool>(handle));

  const auto found = registry.find({"sgd", "ctx-a"});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), handle);

  EXPECT_TRUE(registry.fitted(handle));
  EXPECT_EQ(registry.state_stamp(handle), model.state_stamp());
  EXPECT_EQ(registry.size(), 1u);
  ASSERT_EQ(registry.keys().size(), 1u);
  EXPECT_EQ(registry.keys()[0].str(), "sgd/ctx-a");
}

TEST(ModelRegistry, PublishToExistingKeyHotSwapsSameHandle) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle h1 = registry.publish({"sgd", "ctx"}, fx.pretrained(1)).unwrap();
  const std::uint64_t stamp1 = registry.state_stamp(h1);

  const ModelHandle h2 = registry.publish({"sgd", "ctx"}, fx.pretrained(2)).unwrap();
  EXPECT_EQ(h1, h2);  // stable handle across the weight swap
  EXPECT_NE(registry.state_stamp(h1), stamp1);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistry, FindUnknownKeyIsTyped) {
  ModelRegistry registry;
  const auto missing = registry.find({"sgd", "nope"});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status(), ServeStatus::kUnknownModel);
}

TEST(ModelRegistry, EmptyKeyPartsRejected) {
  Fixture fx;
  ModelRegistry registry;
  EXPECT_EQ(registry.publish({"", "ctx"}, fx.pretrained(1)).status(),
            ServeStatus::kInvalidArgument);
  EXPECT_EQ(registry.reserve({"sgd", ""}).status(), ServeStatus::kInvalidArgument);
}

TEST(ModelRegistry, DeriveSharesTheBaseCheckpointObject) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle base = registry.publish({"sgd", "cloud"}, fx.pretrained(3)).unwrap();
  const ModelHandle derived = registry.derive(base, {"sgd", "cluster"}).unwrap();

  // The checkpoint is shared, not copied: both handles point at the SAME
  // object, and both start serving the same weights.
  EXPECT_EQ(registry.base_checkpoint(base).get(), registry.base_checkpoint(derived).get());
  EXPECT_EQ(registry.state_stamp(base), registry.state_stamp(derived));
  EXPECT_TRUE(registry.fitted(derived));

  // Deriving onto a taken key or from an unknown base is a typed error.
  EXPECT_EQ(registry.derive(base, {"sgd", "cloud"}).status(), ServeStatus::kInvalidArgument);
  EXPECT_EQ(registry.derive(ModelHandle{}, {"sgd", "x"}).status(),
            ServeStatus::kUnknownModel);
}

TEST(ModelRegistry, RefitMatchesTheLegacyPredictorBitExactly) {
  Fixture fx;
  ModelRegistry registry;
  const core::BellamyModel model = fx.pretrained(4);
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, model).unwrap();

  const std::vector<data::JobRun> observed(fx.target_runs.begin(), fx.target_runs.begin() + 3);
  const auto refit = registry.refit(handle, observed, quick_finetune());
  ASSERT_TRUE(refit.ok()) << refit.error_text();
  EXPECT_GT(refit.value().epochs_run, 0u);

  // Same recipe, legacy path: restart from the checkpoint, same strategy,
  // same config.  Predictions must agree bit-for-bit.
  core::BellamyPredictor legacy(model, quick_finetune());
  legacy.fit(observed);

  PredictionService service(registry);
  for (std::size_t i = 4; i < 8; ++i) {
    const auto served = service.predict(handle, fx.target_runs[i]);
    ASSERT_TRUE(served.ok()) << served.error_text();
    EXPECT_EQ(served.value(), legacy.predict(fx.target_runs[i]));
  }
}

TEST(ModelRegistry, RefitWithoutRunsResetsToTheBaseWeights) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, fx.pretrained(5)).unwrap();
  const std::uint64_t base_stamp = registry.state_stamp(handle);

  const std::vector<data::JobRun> observed(fx.target_runs.begin(), fx.target_runs.begin() + 3);
  registry.refit(handle, observed, quick_finetune()).expect();
  EXPECT_NE(registry.state_stamp(handle), base_stamp);

  registry.refit(handle, {}, quick_finetune()).expect();  // direct reuse
  EXPECT_EQ(registry.state_stamp(handle), base_stamp);
}

TEST(ModelRegistry, RefitAsyncMatchesTheBlockingRefitBitExactly) {
  Fixture fx;
  ModelRegistry registry;
  const core::BellamyModel model = fx.pretrained(12);
  const ModelHandle handle = registry.publish({"sgd", "async"}, model).unwrap();

  const std::vector<data::JobRun> observed(fx.target_runs.begin(), fx.target_runs.begin() + 3);
  auto future = registry.refit_async(handle, observed, quick_finetune());
  const auto result = future.get();
  ASSERT_TRUE(result.ok()) << result.error_text();
  EXPECT_GT(result.value().epochs_run, 0u);
  EXPECT_FALSE(registry.refit_pending(handle));

  // The background job runs the exact recipe of the blocking path, so the
  // swapped-in weights are bit-identical to a manual fine-tune of the base.
  core::BellamyPredictor legacy(model, quick_finetune());
  legacy.fit(observed);
  PredictionService service(registry);
  for (std::size_t i = 4; i < 8; ++i) {
    const auto served = service.predict(handle, fx.target_runs[i]);
    ASSERT_TRUE(served.ok()) << served.error_text();
    EXPECT_EQ(served.value(), legacy.predict(fx.target_runs[i]));
  }
}

TEST(ModelRegistry, RefitAsyncCoalescesWhileQueuedAndServesTheLatestPayload) {
  Fixture fx;
  ModelRegistry registry;
  const core::BellamyModel model = fx.pretrained(13);
  const ModelHandle handle = registry.publish({"sgd", "coalesce"}, model).unwrap();

  // Park the entry's refit strand behind a blocker task so the first
  // refit_async job stays QUEUED (not started) while we file a duplicate.
  const auto entry = registry.resolve(handle);
  ASSERT_NE(entry, nullptr);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  entry->refit_strand.post([released] { released.wait(); });

  const std::vector<data::JobRun> first(fx.target_runs.begin(), fx.target_runs.begin() + 2);
  const std::vector<data::JobRun> latest(fx.target_runs.begin(), fx.target_runs.begin() + 4);
  auto f1 = registry.refit_async(handle, first, quick_finetune());
  EXPECT_TRUE(registry.refit_pending(handle));
  auto f2 = registry.refit_async(handle, latest, quick_finetune());

  release.set_value();
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  ASSERT_TRUE(r1.ok()) << r1.error_text();
  ASSERT_TRUE(r2.ok()) << r2.error_text();
  EXPECT_FALSE(registry.refit_pending(handle));

  // Exactly one fine-tune ran, on the LATEST payload: the served weights
  // match a manual fine-tune on `latest`, not on `first`.
  core::BellamyPredictor on_latest(model, quick_finetune());
  on_latest.fit(latest);
  core::BellamyPredictor on_first(model, quick_finetune());
  on_first.fit(first);
  PredictionService service(registry);
  const data::JobRun probe = fx.target_runs[5];
  const double served = service.predict(handle, probe).unwrap();
  EXPECT_EQ(served, on_latest.predict(probe));
  EXPECT_NE(served, on_first.predict(probe));
}

// Regression: erasing a handle (or tearing the registry down) while its
// background refit is queued must neither lose the job nor wedge the shared
// pool worker when the job's closure drops the entry's last reference.
TEST(ModelRegistry, EraseDuringBackgroundRefitFinishesOffRegistry) {
  Fixture fx;
  std::shared_future<ServeResult<core::FineTuneResult>> future;
  {
    ModelRegistry registry;
    const ModelHandle handle =
        registry.publish({"sgd", "orphan"}, fx.pretrained(14)).unwrap();

    // Park the strand so the refit is still queued when the handle goes.
    const auto entry = registry.resolve(handle);
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    entry->refit_strand.post([released] { released.wait(); });

    const std::vector<data::JobRun> observed(fx.target_runs.begin(),
                                             fx.target_runs.begin() + 2);
    future = registry.refit_async(handle, observed, quick_finetune());
    registry.erase(handle).expect();
    EXPECT_EQ(registry.resolve(handle), nullptr);
    release.set_value();
  }  // registry dies with the refit possibly still in flight
  // The orphaned entry (kept alive by the job's closure) still completes.
  const auto result = future.get();
  EXPECT_TRUE(result.ok()) << result.error_text();
}

TEST(ModelRegistry, RefitAsyncTypedErrors) {
  Fixture fx;
  ModelRegistry registry;
  // Unknown handle: the future is immediately ready with a typed failure.
  auto missing = registry.refit_async(ModelHandle{}, {}, quick_finetune());
  EXPECT_EQ(missing.get().status(), ServeStatus::kUnknownModel);
  EXPECT_FALSE(registry.refit_pending(ModelHandle{}));

  // No base checkpoint yet: same kNotFitted the blocking path reports.
  const ModelHandle reserved = registry.reserve({"sgd", "pending"}).unwrap();
  auto unfitted = registry.refit_async(reserved, {}, quick_finetune());
  EXPECT_EQ(unfitted.get().status(), ServeStatus::kNotFitted);
}

TEST(ModelRegistry, ReserveIsUnfittedUntilPublish) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.reserve({"sgd", "pending"}).unwrap();
  EXPECT_FALSE(registry.fitted(handle));
  EXPECT_EQ(registry.state_stamp(handle), 0u);
  EXPECT_EQ(registry.base_checkpoint(handle), nullptr);
  EXPECT_EQ(registry.refit(handle, {}, quick_finetune()).status(), ServeStatus::kNotFitted);

  // publish onto the reserved key keeps the handle and makes it serveable.
  const ModelHandle same = registry.publish({"sgd", "pending"}, fx.pretrained(6)).unwrap();
  EXPECT_EQ(same, handle);
  EXPECT_TRUE(registry.fitted(handle));
}

TEST(ModelRegistry, EraseRetiresTheHandle) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, fx.pretrained(7)).unwrap();
  registry.erase(handle).expect();

  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.fitted(handle));
  EXPECT_EQ(registry.resolve(handle), nullptr);
  EXPECT_EQ(registry.find({"sgd", "ctx"}).status(), ServeStatus::kUnknownModel);
  EXPECT_EQ(registry.erase(handle).status(), ServeStatus::kUnknownModel);
}

TEST(ModelRegistry, StoreBackedOpenPersistAndSharing) {
  Fixture fx;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bellamy_registry_" + std::to_string(::getpid())))
          .string();
  auto store = std::make_shared<core::ModelStore>(dir);

  const core::BellamyModel model = fx.pretrained(8);
  std::vector<double> expected;
  {
    ModelRegistry provider(store);
    const ModelHandle handle = provider.publish({"sgd", "v1"}, model).unwrap();
    provider.persist(handle).expect();
    // persisting an unfitted entry is a typed error
    const ModelHandle empty = provider.reserve({"sgd", "empty"}).unwrap();
    EXPECT_EQ(provider.persist(empty).status(), ServeStatus::kNotFitted);
  }

  ModelRegistry consumer(store);
  // A route reserved before the open must still be materialized from the
  // store (regression: the early-return used to hand back the empty entry).
  const ModelHandle reserved = consumer.reserve({"sgd", "v1"}).unwrap();
  EXPECT_FALSE(consumer.fitted(reserved));
  const auto opened = consumer.open({"sgd", "v1"});
  ASSERT_TRUE(opened.ok()) << opened.error_text();
  EXPECT_EQ(opened.value(), reserved);  // same handle, now serveable
  EXPECT_EQ(consumer.state_stamp(opened.value()), model.state_stamp());
  // Re-opening the key reuses the materialized entry (same handle).
  EXPECT_EQ(consumer.open({"sgd", "v1"}).unwrap(), opened.value());

  const auto missing = consumer.open({"sgd", "v2"});
  ASSERT_EQ(missing.status(), ServeStatus::kUnknownModel);
  EXPECT_NE(missing.message().find(store->path_for("sgd", "v2")), std::string::npos)
      << missing.message();

  ModelRegistry storeless;
  EXPECT_EQ(storeless.open({"sgd", "v1"}).status(), ServeStatus::kInvalidArgument);
  EXPECT_EQ(storeless.persist(storeless.reserve({"a", "b"}).unwrap()).status(),
            ServeStatus::kInvalidArgument);

  std::filesystem::remove_all(dir);
}

TEST(ModelRegistry, ServingModelAdapterDrivesTheFacade) {
  Fixture fx;
  ModelRegistry registry;
  const core::BellamyModel model = fx.pretrained(9);
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, model).unwrap();
  PredictionService service(registry);

  ServingModel adapter(registry, service, handle, quick_finetune(),
                       core::ReuseStrategy::kPartialUnfreeze, "Bellamy(serve)");
  EXPECT_EQ(adapter.name(), "Bellamy(serve)");
  EXPECT_EQ(adapter.min_training_points(), 0u);

  const std::vector<data::JobRun> observed(fx.target_runs.begin(), fx.target_runs.begin() + 3);
  adapter.fit(observed);
  EXPECT_GT(adapter.last_fit().epochs_run, 0u);

  core::BellamyPredictor legacy(model, quick_finetune());
  legacy.fit(observed);
  const std::vector<data::JobRun> queries(fx.target_runs.begin() + 4,
                                          fx.target_runs.begin() + 8);
  const auto via_adapter = adapter.predict_batch(queries);
  const auto via_legacy = legacy.predict_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(via_adapter[i], via_legacy[i]);
  }
}

TEST(ModelRegistry, RefitCallbackFiresAfterTheSwapWithTheFutureResult) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "notify"}, fx.pretrained(29)).unwrap();

  const std::uint64_t stamp_before = registry.state_stamp(handle);
  std::promise<ServeResult<core::FineTuneResult>> seen;
  std::atomic<std::uint64_t> stamp_at_callback{0};
  auto future = registry.refit_async(
      handle, fx.target_runs, quick_finetune(), core::ReuseStrategy::kPartialUnfreeze,
      [&](const ServeResult<core::FineTuneResult>& result) {
        // The swap already happened when the callback runs.
        stamp_at_callback.store(registry.state_stamp(handle));
        seen.set_value(result);
      });

  const ServeResult<core::FineTuneResult> from_future = future.get();
  const ServeResult<core::FineTuneResult> from_callback = seen.get_future().get();
  ASSERT_TRUE(from_future.ok()) << from_future.error_text();
  ASSERT_TRUE(from_callback.ok());
  EXPECT_EQ(from_callback.value().epochs_run, from_future.value().epochs_run);
  EXPECT_EQ(from_callback.value().best_mae_seconds, from_future.value().best_mae_seconds);
  EXPECT_NE(stamp_at_callback.load(), stamp_before);
}

TEST(ModelRegistry, CoalescedRefitCallbacksAllFireWithTheSharedResult) {
  Fixture fx;
  ModelRegistry registry;
  const core::BellamyModel model = fx.pretrained(31);
  const ModelHandle handle = registry.publish({"sgd", "notify-coalesce"}, model).unwrap();

  // Park the strand so both requests coalesce into one queued job.
  const auto entry = registry.resolve(handle);
  ASSERT_NE(entry, nullptr);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  entry->refit_strand.post([released] { released.wait(); });

  std::promise<ServeResult<core::FineTuneResult>> first_seen;
  std::promise<ServeResult<core::FineTuneResult>> second_seen;
  const std::vector<data::JobRun> latest(fx.target_runs.begin(), fx.target_runs.begin() + 4);
  auto f1 = registry.refit_async(
      handle, {fx.target_runs.begin(), fx.target_runs.begin() + 2}, quick_finetune(),
      core::ReuseStrategy::kPartialUnfreeze,
      [&](const ServeResult<core::FineTuneResult>& r) { first_seen.set_value(r); });
  auto f2 = registry.refit_async(
      handle, latest, quick_finetune(), core::ReuseStrategy::kPartialUnfreeze,
      [&](const ServeResult<core::FineTuneResult>& r) { second_seen.set_value(r); });
  release.set_value();

  // ONE fine-tune ran (the latest payload), and BOTH callbacks fired with
  // its result — the coalesced caller is notified, not dropped.
  const auto r1 = first_seen.get_future().get();
  const auto r2 = second_seen.get_future().get();
  ASSERT_TRUE(r1.ok()) << r1.error_text();
  ASSERT_TRUE(r2.ok()) << r2.error_text();
  EXPECT_EQ(r1.value().epochs_run, r2.value().epochs_run);
  EXPECT_EQ(r1.value().best_mae_seconds, r2.value().best_mae_seconds);
  EXPECT_EQ(f1.get().value().epochs_run, r1.value().epochs_run);
  (void)f2;
}

TEST(ModelRegistry, RefitCallbackOnUnknownHandleFiresInline) {
  ModelRegistry registry;
  bool fired = false;
  ServeStatus status = ServeStatus::kOk;
  auto future = registry.refit_async(ModelHandle{}, {}, quick_finetune(),
                                     core::ReuseStrategy::kPartialUnfreeze,
                                     [&](const ServeResult<core::FineTuneResult>& r) {
                                       fired = true;
                                       status = r.status();
                                     });
  // Inline: no strand exists for an unknown handle, so by the time
  // refit_async returns the callback already ran.
  EXPECT_TRUE(fired);
  EXPECT_EQ(status, ServeStatus::kUnknownModel);
  EXPECT_EQ(future.get().status(), ServeStatus::kUnknownModel);
}

// Regression: a store-backed entry went silently stale after refit_async —
// the swap never reached disk, so a restarted process served PRE-refit
// weights.  With auto-persist on, the completion hook writes the swapped
// weights back to the store; a fresh registry opening the same store must
// see the refit, not the original publish.
TEST(ModelRegistry, AutoPersistWritesTheRefitSwapBackToTheStore) {
  Fixture fx;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bellamy_autopersist_" + std::to_string(::getpid())))
          .string();
  auto store = std::make_shared<core::ModelStore>(dir);

  std::uint64_t refit_stamp = 0;
  {
    ModelRegistry registry(store);
    EXPECT_FALSE(registry.auto_persist());
    registry.set_auto_persist(true);
    EXPECT_TRUE(registry.auto_persist());

    const ModelHandle handle =
        registry.publish({"sgd", "stale"}, fx.pretrained(31)).unwrap();
    registry.persist(handle).expect();

    const auto result = registry.refit_async(handle, fx.target_runs, quick_finetune()).get();
    ASSERT_TRUE(result.ok()) << result.error_text();
    refit_stamp = registry.state_stamp(handle);
  }

  ModelRegistry restarted(store);
  const auto reopened = restarted.open({"sgd", "stale"});
  ASSERT_TRUE(reopened.ok()) << reopened.error_text();
  // Pre-fix this held the PUBLISH-time weights; the state stamp (a content
  // hash of the weights) proves the refit swap reached disk.
  EXPECT_EQ(restarted.state_stamp(reopened.value()), refit_stamp);

  std::filesystem::remove_all(dir);
}

TEST(ModelRegistry, AutoPersistFailureSurfacesAsStoreErrorButTheSwapLands) {
  Fixture fx;
  // A registry with NO backing store: the swap itself must land (serving
  // moves to the new weights), but the result reports kStoreError so the
  // caller knows disk and memory diverged.
  ModelRegistry registry;
  registry.set_auto_persist(true);
  const ModelHandle handle =
      registry.publish({"sgd", "nostore"}, fx.pretrained(32)).unwrap();
  const std::uint64_t stamp_before = registry.state_stamp(handle);

  const auto result = registry.refit_async(handle, fx.target_runs, quick_finetune()).get();
  EXPECT_EQ(result.status(), ServeStatus::kStoreError);
  EXPECT_NE(result.message().find("auto-persist"), std::string::npos) << result.message();
  // The fine-tune swap was NOT rolled back or blocked.
  EXPECT_NE(registry.state_stamp(handle), stamp_before);
  EXPECT_TRUE(registry.fitted(handle));
}

TEST(ModelRegistry, RefitHonorsTheEntrysReductionConfig) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, fx.pretrained(1)).unwrap();

  reduce::ReductionConfig reduction;
  reduction.policy = reduce::ReductionPolicy::kRecency;
  reduction.budget = 6;
  ASSERT_TRUE(registry.set_reduction(handle, reduction).ok());
  EXPECT_EQ(registry.reduction(handle).budget, 6u);

  ASSERT_GT(fx.target_runs.size(), reduction.budget);
  const auto result = registry.refit(handle, fx.target_runs, quick_finetune());
  ASSERT_TRUE(result.ok()) << result.error_text();

  const reduce::ReductionReport report = registry.last_reduction(handle);
  EXPECT_EQ(report.policy, reduce::ReductionPolicy::kRecency);
  EXPECT_EQ(report.input_runs, fx.target_runs.size());
  EXPECT_EQ(report.kept_runs, reduction.budget);
  EXPECT_EQ(report.dropped_runs, fx.target_runs.size() - reduction.budget);
  const auto [reductions, dropped] = registry.reduction_counters(handle);
  EXPECT_EQ(reductions, 1u);
  EXPECT_EQ(dropped, report.dropped_runs);

  // The reduced refit is bit-identical to fine-tuning the coreset directly.
  const auto coreset = reduce::reduce_runs(fx.target_runs, reduction);
  ModelRegistry plain;
  const ModelHandle reference = plain.publish({"sgd", "ctx"}, fx.pretrained(1)).unwrap();
  ASSERT_TRUE(plain.refit(reference, coreset, quick_finetune()).ok());
  EXPECT_EQ(registry.checkpoint_text(handle).unwrap(),
            plain.checkpoint_text(reference).unwrap());
}

TEST(ModelRegistry, ReductionCountersUntouchedWhenInactiveOrEmpty) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle handle = registry.publish({"sgd", "ctx"}, fx.pretrained(1)).unwrap();

  // No reduction configured: a refit reports nothing.
  ASSERT_TRUE(registry.refit(handle, fx.target_runs, quick_finetune()).ok());
  EXPECT_EQ(registry.reduction_counters(handle).first, 0u);

  // Reduction configured but the refit carries no runs (direct reuse):
  // nothing to reduce, nothing counted.
  reduce::ReductionConfig reduction;
  reduction.policy = reduce::ReductionPolicy::kUniform;
  reduction.budget = 4;
  ASSERT_TRUE(registry.set_reduction(handle, reduction).ok());
  ASSERT_TRUE(registry.refit(handle, {}, quick_finetune()).ok());
  EXPECT_EQ(registry.reduction_counters(handle).first, 0u);
  EXPECT_EQ(registry.last_reduction(handle).kept_runs, 0u);
}

TEST(ModelRegistry, DefaultReductionIsInheritedByNewEntriesOnly) {
  Fixture fx;
  ModelRegistry registry;
  const ModelHandle before =
      registry.publish({"sgd", "before"}, fx.pretrained(1)).unwrap();

  reduce::ReductionConfig def;
  def.policy = reduce::ReductionPolicy::kCoverage;
  def.budget = 10;
  registry.set_default_reduction(def);
  EXPECT_EQ(registry.default_reduction().budget, 10u);

  const ModelHandle after = registry.publish({"sgd", "after"}, fx.pretrained(2)).unwrap();
  EXPECT_EQ(registry.reduction(after).policy, reduce::ReductionPolicy::kCoverage);
  EXPECT_EQ(registry.reduction(after).budget, 10u);
  // Entries created before the default was set keep their config.
  EXPECT_EQ(registry.reduction(before).policy, reduce::ReductionPolicy::kNone);

  // Derived handles inherit the default too.
  const ModelHandle derived = registry.derive(after, {"sgd", "derived"}).unwrap();
  EXPECT_EQ(registry.reduction(derived).budget, 10u);

  // set_reduction on an unknown handle is typed.
  EXPECT_EQ(registry.set_reduction(ModelHandle{}, def).status(),
            ServeStatus::kUnknownModel);
}

}  // namespace
}  // namespace bellamy::serve
