// End-to-end integration tests: the full pipeline from trace generation
// through pre-training, persistence, fine-tuning and resource selection —
// the workflow of paper Fig. 1 — plus statistical checks of the headline
// claims at miniature scale.

#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/ernest.hpp"
#include "core/model_store.hpp"
#include "core/predictor.hpp"
#include "core/resource_selector.hpp"
#include "core/trainer.hpp"
#include "core/variants.hpp"
#include "data/bell_generator.hpp"
#include "data/c3o_generator.hpp"
#include "data/csv_io.hpp"
#include "eval/metrics.hpp"
#include "eval/splits.hpp"
#include "util/rng.hpp"

namespace bellamy {
namespace {

TEST(EndToEnd, PretrainPersistFinetunePredict) {
  // 1. Generate cross-context history for one algorithm.
  data::C3OGeneratorConfig gcfg;
  gcfg.seed = 101;
  const auto history = data::C3OGenerator(gcfg).generate_algorithm("sgd", 5);
  const auto groups = history.contexts();
  const auto& target = groups.back();
  const data::Dataset rest = history.exclude_context(target.key);

  // 2. Pre-train on everything except the target context.
  core::BellamyModel model(core::BellamyConfig{}, 1);
  core::PreTrainConfig pre;
  pre.epochs = 250;
  core::pretrain(model, rest.runs(), pre);

  // 3. Persist and reload through the model store.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bellamy_e2e_store").string();
  core::ModelStore store(dir);
  store.save(model, "sgd", "e2e");
  core::BellamyModel reloaded = store.load("sgd", "e2e");
  std::filesystem::remove_all(dir);

  // 4. Fine-tune on 3 points of the new context.
  std::vector<data::JobRun> few(target.runs.begin(), target.runs.begin() + 3);
  core::FineTuneConfig fine;
  fine.max_epochs = 500;
  fine.patience = 250;
  const auto ft = core::finetune(reloaded, few, fine);
  EXPECT_GT(ft.epochs_run + (ft.reached_target ? 1 : 0), 0u);

  // 5. Predict the rest of the context with bounded relative error.
  eval::ErrorAccumulator acc;
  for (std::size_t i = 3; i < target.runs.size(); ++i) {
    acc.add(reloaded.predict_one(target.runs[i]), target.runs[i].runtime_s);
  }
  EXPECT_LT(acc.stats().mre, 0.60) << "fine-tuned model should roughly track the context";
}

TEST(EndToEnd, PretrainedBeatsUntrainedAtZeroPoints) {
  // Direct reuse (0 fine-tuning points) must beat an untrained local model.
  data::C3OGeneratorConfig gcfg;
  gcfg.seed = 202;
  const auto history = data::C3OGenerator(gcfg).generate_algorithm("kmeans", 6);
  const auto groups = history.contexts();
  const auto& target = groups.front();
  const data::Dataset rest = history.exclude_context(target.key);

  core::BellamyModel pretrained(core::BellamyConfig{}, 2);
  core::PreTrainConfig pre;
  pre.epochs = 300;
  core::pretrain(pretrained, rest.runs(), pre);

  eval::ErrorAccumulator pre_acc;
  for (const auto& r : target.runs) {
    pre_acc.add(pretrained.predict_one(r), r.runtime_s);
  }
  // An untrained guess has no knowledge at all; compare against predicting
  // the pre-training corpus mean.
  double corpus_mean = 0.0;
  for (const auto& r : rest.runs()) corpus_mean += r.runtime_s;
  corpus_mean /= static_cast<double>(rest.size());
  eval::ErrorAccumulator mean_acc;
  for (const auto& r : target.runs) mean_acc.add(corpus_mean, r.runtime_s);

  EXPECT_LT(pre_acc.stats().mre, mean_acc.stats().mre)
      << "context-aware pre-trained model should beat the corpus-mean baseline";
}

TEST(EndToEnd, ResourceSelectionWithFinetunedBellamy) {
  data::C3OGeneratorConfig gcfg;
  gcfg.seed = 303;
  const auto history = data::C3OGenerator(gcfg).generate_algorithm("sgd", 4);
  const auto groups = history.contexts();
  const auto& target = groups.front();
  const data::Dataset rest = history.exclude_context(target.key);

  core::BellamyModel pretrained(core::BellamyConfig{}, 3);
  core::PreTrainConfig pre;
  pre.epochs = 200;
  core::pretrain(pretrained, rest.runs(), pre);

  core::FineTuneConfig fine;
  fine.max_epochs = 300;
  fine.patience = 150;
  core::BellamyPredictor predictor(pretrained, fine);
  std::vector<data::JobRun> few(target.runs.begin(), target.runs.begin() + 4);
  predictor.fit(few);

  data::JobRun tmpl = target.runs.front();
  const double target_runtime = tmpl.runtime_s * 1.1;
  const auto sel = core::select_scaleout(predictor, tmpl, {2, 4, 6, 8, 10, 12},
                                         target_runtime);
  EXPECT_GE(sel.chosen_scale_out, 2);
  EXPECT_LE(sel.chosen_scale_out, 12);
  EXPECT_EQ(sel.predictions.size(), 6u);
}

TEST(EndToEnd, CsvRoundTripFeedsTraining) {
  // Export traces to CSV, re-import, and train on the imported dataset —
  // the path a user with real C3O CSVs would follow.
  const auto original = data::C3OGenerator().generate_algorithm("grep", 2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "bellamy_e2e_traces.csv").string();
  data::save_csv_file(path, original);
  const auto imported = data::load_csv_file(path);
  std::filesystem::remove(path);

  core::BellamyModel model(core::BellamyConfig{}, 4);
  core::PreTrainConfig pre;
  pre.epochs = 50;
  const auto result = core::pretrain(model, imported.runs(), pre);
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

TEST(EndToEnd, CrossEnvironmentReuseTrainsFasterThanLocal) {
  // §IV-C.2 timing claim in miniature: reusing a cloud-pre-trained model on
  // the cluster traces converges in fewer epochs than training locally.
  data::C3OGeneratorConfig gcfg;
  gcfg.seed = 404;
  const auto c3o = data::C3OGenerator(gcfg).generate_algorithm("grep", 5);
  const auto bell = data::BellGenerator().generate_algorithm("grep");
  const auto target = bell.contexts().front();

  core::BellamyModel pretrained(core::BellamyConfig{}, 5);
  core::PreTrainConfig pre;
  pre.epochs = 300;
  core::pretrain(pretrained, c3o.runs(), pre);

  std::vector<data::JobRun> few(target.runs.begin(), target.runs.begin() + 5);
  core::FineTuneConfig fine;
  fine.max_epochs = 1200;
  fine.patience = 1200;
  fine.mae_target_seconds = 60.0;

  core::BellamyModel reused = core::BellamyModel::from_checkpoint(pretrained.to_checkpoint());
  const auto cfg_reuse =
      core::apply_reuse_strategy(core::ReuseStrategy::kPartialUnfreeze, reused, fine);
  const auto r_reuse = core::finetune(reused, few, cfg_reuse);

  core::BellamyModel local(core::BellamyConfig{}, 5);
  core::FineTuneConfig fine_local = fine;
  fine_local.unlock_f_immediately = true;
  const auto r_local = core::finetune(local, few, fine_local);

  // Allow slack: this is a statistical tendency, not a per-seed guarantee.
  EXPECT_LE(r_reuse.epochs_run, r_local.epochs_run + 200);
}

TEST(EndToEnd, NnlsBaselineSanityOnGeneratedData) {
  // The Ernest baseline must interpolate generated contexts decently when
  // given all scale-outs — a guard that the generator stays NNLS-learnable.
  const auto ds = data::C3OGenerator().generate_algorithm("sort", 3);
  for (const auto& group : ds.contexts()) {
    baselines::ErnestModel model;
    model.fit(group.runs);
    eval::ErrorAccumulator acc;
    for (const auto& r : group.runs) acc.add(model.predict(r), r.runtime_s);
    EXPECT_LT(acc.stats().mre, 0.25) << group.key;
  }
}

}  // namespace
}  // namespace bellamy
