// Property-style gradient verification sweeps: every differentiable module is
// checked against central finite differences across a grid of layer shapes,
// batch sizes and activations (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <cmath>

#include "core/bellamy_model.hpp"
#include "core/trainer.hpp"
#include "nn/activations.hpp"
#include "nn/dropout.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

struct ShapeCase {
  std::size_t in;
  std::size_t out;
  std::size_t batch;
  bool bias;
};

class LinearGradSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(LinearGradSweep, MatchesFiniteDifferences) {
  const auto c = GetParam();
  util::Rng rng(c.in * 1000 + c.out * 10 + c.batch);
  Linear layer(c.in, c.out, c.bias, Init::kHeNormal, rng);
  const Matrix x = Matrix::randn(c.batch, c.in, rng);
  const auto result = grad_check(layer, x);
  EXPECT_TRUE(result.ok(1e-5)) << "in=" << c.in << " out=" << c.out << " batch=" << c.batch
                               << " input_err=" << result.max_input_grad_error
                               << " param_err=" << result.max_param_grad_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LinearGradSweep,
    ::testing::Values(ShapeCase{1, 1, 1, true}, ShapeCase{1, 1, 1, false},
                      ShapeCase{3, 16, 4, true},   // the paper's f first layer
                      ShapeCase{16, 8, 4, true},   // f second layer
                      ShapeCase{40, 8, 2, false},  // g first layer (no bias)
                      ShapeCase{8, 4, 2, false},   // g second layer
                      ShapeCase{4, 8, 3, false},   // h first layer
                      ShapeCase{8, 40, 3, false},  // h second layer
                      ShapeCase{28, 8, 5, true},   // z first layer
                      ShapeCase{8, 1, 5, true},    // z output layer
                      ShapeCase{40, 8, 7, false},  // encoder at odd batch
                      ShapeCase{40, 8, 64, false},  // encoder at pre-train batch
                      ShapeCase{3, 16, 64, true}),  // f at pre-train batch
    [](const auto& info) {
      return "in" + std::to_string(info.param.in) + "_out" + std::to_string(info.param.out) +
             "_b" + std::to_string(info.param.batch) + (info.param.bias ? "_bias" : "_nobias");
    });

class ActivationGradSweep
    : public ::testing::TestWithParam<std::tuple<Activation, std::size_t>> {};

TEST_P(ActivationGradSweep, MatchesFiniteDifferences) {
  const auto [act, batch] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(batch) * 7 + static_cast<std::uint64_t>(act));
  auto module = make_activation(act);
  Matrix x = Matrix::randn(batch, 6, rng);
  if (act == Activation::kRelu) {
    // Keep away from the kink for valid finite differences.
    x.apply_inplace([](double v) { return v + (v >= 0.0 ? 0.5 : -0.5); });
  }
  const auto result = grad_check(*module, x);
  EXPECT_TRUE(result.ok(1e-6)) << activation_name(act) << " batch=" << batch;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ActivationGradSweep,
    ::testing::Combine(::testing::Values(Activation::kSelu, Activation::kTanh,
                                         Activation::kRelu, Activation::kSigmoid,
                                         Activation::kIdentity),
                       ::testing::Values<std::size_t>(1, 2, 4, 7, 16, 64)),
    [](const auto& info) {
      return std::string(activation_name(std::get<0>(info.param))) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

// Batched-backward certification: a Linear / activation / AlphaDropout(eval)
// / Linear / activation stack — the exact module mix of the Bellamy
// encoder/decoder — gradchecked against central differences for every
// activation at batch sizes {1, 2, 7, 64}.
class BatchedBackwardSweep
    : public ::testing::TestWithParam<std::tuple<Activation, std::size_t>> {};

TEST_P(BatchedBackwardSweep, LinearActivationDropoutStack) {
  const auto [act, batch] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(batch) * 101 + static_cast<std::uint64_t>(act));
  Sequential net;
  net.emplace<Linear>(6, 9, false, Init::kLeCunNormal, rng, "l1");
  net.add(make_activation(act));
  net.emplace<AlphaDropout>(0.10, util::Rng(7));
  net.emplace<Linear>(9, 5, true, Init::kHeNormal, rng, "l2");
  net.add(make_activation(act));
  // Dropout must behave as identity under gradcheck: eval mode.
  net.set_training(false);
  Matrix x = Matrix::randn(batch, 6, rng);
  if (act == Activation::kRelu) {
    x.apply_inplace([](double v) { return v + (v >= 0.0 ? 0.5 : -0.5); });
  }
  const auto result = grad_check(net, x, {}, 1e-6);
  const double tol = act == Activation::kRelu ? 1e-3 : 1e-5;
  EXPECT_TRUE(result.ok(tol)) << activation_name(act) << " batch=" << batch
                              << " input_err=" << result.max_input_grad_error
                              << " param_err=" << result.max_param_grad_error;
}

INSTANTIATE_TEST_SUITE_P(
    Combos, BatchedBackwardSweep,
    ::testing::Combine(::testing::Values(Activation::kSelu, Activation::kTanh,
                                         Activation::kRelu, Activation::kSigmoid,
                                         Activation::kIdentity),
                       ::testing::Values<std::size_t>(1, 2, 7, 64)),
    [](const auto& info) {
      return std::string(activation_name(std::get<0>(info.param))) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

class MlpGradSweep : public ::testing::TestWithParam<std::tuple<std::size_t, Activation>> {};

TEST_P(MlpGradSweep, TwoLayerNetworkGradients) {
  const auto [hidden, act] = GetParam();
  util::Rng rng(hidden * 31 + static_cast<std::uint64_t>(act));
  Sequential net;
  net.emplace<Linear>(5, hidden, true, Init::kHeNormal, rng, "l1");
  net.add(make_activation(act));
  net.emplace<Linear>(hidden, 3, true, Init::kHeNormal, rng, "l2");
  net.add(make_activation(act));
  Matrix x = Matrix::randn(4, 5, rng);
  if (act == Activation::kRelu) {
    x.apply_inplace([](double v) { return v + (v >= 0.0 ? 0.5 : -0.5); });
  }
  const auto result = grad_check(net, x, {}, 1e-6);
  // ReLU has interior kinks that finite differences can clip.
  const double tol = act == Activation::kRelu ? 1e-3 : 1e-5;
  EXPECT_TRUE(result.ok(tol)) << "hidden=" << hidden << " act=" << activation_name(act)
                              << " input_err=" << result.max_input_grad_error
                              << " param_err=" << result.max_param_grad_error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MlpGradSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 8, 16),
                       ::testing::Values(Activation::kSelu, Activation::kTanh,
                                         Activation::kRelu)),
    [](const auto& info) {
      return "h" + std::to_string(std::get<0>(info.param)) + "_" +
             activation_name(std::get<1>(info.param));
    });

class LossGradSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossGradSweep, HuberGradThroughNetwork) {
  // End-to-end grad check: loss(network(x)) with Huber at various deltas.
  const double delta = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(delta * 1000));
  Sequential net;
  net.emplace<Linear>(3, 8, true, Init::kHeNormal, rng, "l1");
  net.add(make_activation(Activation::kSelu));
  net.emplace<Linear>(8, 1, true, Init::kHeNormal, rng, "l2");
  const Matrix x = Matrix::randn(6, 3, rng);
  const Matrix target = Matrix::randn(6, 1, rng);
  const auto loss_fn = [&](const Matrix& y) {
    const auto res = huber_loss(y, target, delta);
    return std::make_pair(res.value, res.grad);
  };
  const auto result = grad_check(net, x, loss_fn);
  EXPECT_TRUE(result.ok(1e-5)) << "delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(Deltas, LossGradSweep, ::testing::Values(0.1, 1.0, 5.0),
                         [](const auto& info) {
                           return "delta_x10_" +
                                  std::to_string(static_cast<int>(info.param * 10));
                         });

// ---- batched train_step vs accumulated per-sample steps --------------------
//
// One stacked train_step over a B-sample batch must produce (a) the mean of
// the per-sample losses and (b) 1/B times the SUM of the per-sample
// gradients, because every loss term is normalized by the batch element
// count.  This certifies the dedup-aware batched backward (gradients of
// shared property rows accumulated by multiplicity) against the per-sample
// path to 1e-9.

data::JobRun equivalence_run(int ctx, int scale_out, double runtime_s) {
  data::JobRun r;
  r.algorithm = ctx % 2 ? "sgd" : "grep";
  r.node_type = ctx % 3 ? "m4.2xlarge" : "r4.2xlarge";
  r.job_parameters = std::to_string(25 + ctx);
  r.dataset_size_mb = 10000 + 500 * static_cast<std::uint64_t>(ctx);
  r.data_characteristics = "features-100-dense";
  r.memory_mb = 32768;
  r.cpu_cores = 8;
  r.scale_out = scale_out;
  r.runtime_s = runtime_s;
  return r;
}

class TrainStepEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrainStepEquivalence, BatchedMatchesAccumulatedPerSample) {
  const std::size_t b = GetParam();
  // Mix duplicated contexts (exercising multiplicity > 1) with distinct ones.
  std::vector<data::JobRun> runs;
  for (std::size_t i = 0; i < b; ++i) {
    runs.push_back(equivalence_run(static_cast<int>(i % 5), 2 + static_cast<int>(i % 7),
                                   120.0 + 10.0 * static_cast<double>(i)));
  }

  core::BellamyModel model(core::BellamyConfig{}, 42);
  model.fit_normalization(runs);
  model.set_dropout_rate(0.0);  // equivalence requires the deterministic path
  const auto params = model.parameters();

  // Batched: one stacked forward/backward.
  for (nn::Parameter* p : params) p->zero_grad();
  const auto batch_loss = model.train_step(model.make_batch(runs), 1.0);
  std::vector<Matrix> batched_grads;
  for (nn::Parameter* p : params) batched_grads.push_back(p->grad);

  // Per-sample: B singleton steps, gradients and losses accumulated.
  for (nn::Parameter* p : params) p->zero_grad();
  double sum_total = 0.0, sum_huber = 0.0, sum_recon = 0.0, sum_mae = 0.0;
  for (const auto& run : runs) {
    const auto loss = model.train_step(model.make_batch({run}), 1.0);
    sum_total += loss.total;
    sum_huber += loss.huber;
    sum_recon += loss.reconstruction;
    sum_mae += loss.mae_seconds;
  }

  const double inv_b = 1.0 / static_cast<double>(b);
  EXPECT_NEAR(batch_loss.total, sum_total * inv_b, 1e-9);
  EXPECT_NEAR(batch_loss.huber, sum_huber * inv_b, 1e-9);
  EXPECT_NEAR(batch_loss.reconstruction, sum_recon * inv_b, 1e-9);
  EXPECT_NEAR(batch_loss.mae_seconds, sum_mae * inv_b, 1e-9);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Matrix scaled = params[i]->grad;
    scaled *= inv_b;
    EXPECT_LE(Matrix::max_abs_diff(batched_grads[i], scaled), 1e-9) << params[i]->name;
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, TrainStepEquivalence,
                         ::testing::Values<std::size_t>(1, 2, 7, 64),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

// ---- mini-batch finetune vs the full-batch reference -----------------------
//
// FineTuneConfig::batch_size opts into SGD-style mini-batching inside
// finetune().  Two certifications against the full-batch path:
//
//   (a) batch_size = 0 (the default) and batch_size >= run count must be
//       BIT-IDENTICAL to the pre-existing full-batch loop — the knob is
//       opt-in, so the default cannot move a single bit;
//   (b) genuine mini-batches optimize the SAME objective: best MAE is
//       tracked against the full batch every epoch, so the mini-batch fit
//       must land within a modest factor of the full-batch fit (and never
//       return a non-finite or zero-epoch result).

std::vector<data::JobRun> finetune_runs(std::size_t n) {
  std::vector<data::JobRun> runs;
  for (std::size_t i = 0; i < n; ++i) {
    runs.push_back(equivalence_run(static_cast<int>(i % 5), 2 + static_cast<int>(i % 7),
                                   120.0 + 15.0 * static_cast<double>(i % 9)));
  }
  return runs;
}

core::FineTuneConfig short_finetune(std::size_t batch_size) {
  core::FineTuneConfig cfg;
  cfg.max_epochs = 40;
  cfg.mae_target_seconds = 0.0;  // never early-stop on target: fixed work
  cfg.patience = 1000;
  cfg.seed = 19;
  cfg.batch_size = batch_size;
  return cfg;
}

TEST(FineTuneBatchEquivalence, FullBatchFallbackIsBitIdenticalToDefault) {
  const std::vector<data::JobRun> runs = finetune_runs(12);
  // batch_size 0, == n, and > n must all take the full-batch path.
  std::vector<core::BellamyModel> models;
  std::vector<core::FineTuneResult> results;
  for (const std::size_t bs : {std::size_t{0}, runs.size(), runs.size() + 5}) {
    core::BellamyModel model(core::BellamyConfig{}, 42);
    model.fit_normalization(runs);
    results.push_back(core::finetune(model, runs, short_finetune(bs)));
    models.push_back(std::move(model));
  }
  const auto reference = models.front().parameters();
  for (std::size_t m = 1; m < models.size(); ++m) {
    EXPECT_EQ(results[m].epochs_run, results[0].epochs_run);
    EXPECT_EQ(results[m].best_mae_seconds, results[0].best_mae_seconds);  // bit-exact
    const auto params = models[m].parameters();
    ASSERT_EQ(params.size(), reference.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      EXPECT_EQ(Matrix::max_abs_diff(params[i]->value, reference[i]->value), 0.0)
          << "model " << m << " " << params[i]->name;
    }
  }
}

class FineTuneBatchSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FineTuneBatchSweep, MiniBatchTracksTheFullBatchObjective) {
  const std::size_t batch_size = GetParam();
  const std::vector<data::JobRun> runs = finetune_runs(24);

  core::BellamyModel full(core::BellamyConfig{}, 42);
  full.fit_normalization(runs);
  const auto full_result = core::finetune(full, runs, short_finetune(0));

  core::BellamyModel mini(core::BellamyConfig{}, 42);
  mini.fit_normalization(runs);
  const auto mini_result = core::finetune(mini, runs, short_finetune(batch_size));

  EXPECT_GT(mini_result.epochs_run, 0u);
  ASSERT_TRUE(std::isfinite(mini_result.best_mae_seconds));
  EXPECT_GE(mini_result.best_mae_seconds, 0.0);
  // best_mae is evaluated on the FULL batch in both paths, so the two fits
  // share one objective; more steps per epoch may land better or slightly
  // worse, but the same optimum must be in reach.
  EXPECT_LE(mini_result.best_mae_seconds, 3.0 * full_result.best_mae_seconds + 1.0)
      << "full " << full_result.best_mae_seconds << "s vs mini "
      << mini_result.best_mae_seconds << "s";
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, FineTuneBatchSweep,
                         ::testing::Values<std::size_t>(1, 4, 8, 16),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bellamy::nn
