#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/dropout.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

Sequential make_mlp(util::Rng& rng, bool with_dropout = false) {
  Sequential seq;
  seq.emplace<Linear>(3, 8, true, Init::kHeNormal, rng, "l1");
  seq.add(make_activation(Activation::kSelu));
  if (with_dropout) seq.add(std::make_unique<AlphaDropout>(0.2, rng.fork()));
  seq.emplace<Linear>(8, 2, true, Init::kHeNormal, rng, "l2");
  seq.add(make_activation(Activation::kSelu));
  return seq;
}

TEST(Sequential, ForwardShape) {
  util::Rng rng(1);
  Sequential seq = make_mlp(rng);
  const Matrix y = seq.forward(Matrix::randn(5, 3, rng));
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Sequential, EmptySequentialIsIdentity) {
  Sequential seq;
  const Matrix x{{1.0, 2.0}};
  EXPECT_EQ(seq.forward(x), x);
  EXPECT_EQ(seq.backward(x), x);
}

TEST(Sequential, ParametersAggregated) {
  util::Rng rng(2);
  Sequential seq = make_mlp(rng);
  EXPECT_EQ(seq.parameters().size(), 4u);  // 2 layers x (weight + bias)
  EXPECT_EQ(seq.num_parameters(), 3u * 8u + 8u + 8u * 2u + 2u);
}

TEST(Sequential, GradCheckTwoLayerMlp) {
  util::Rng rng(3);
  Sequential seq = make_mlp(rng);
  seq.set_training(false);
  const auto result = grad_check(seq, Matrix::randn(4, 3, rng));
  EXPECT_TRUE(result.ok(1e-5)) << "input err " << result.max_input_grad_error << " param err "
                               << result.max_param_grad_error;
}

TEST(Sequential, SetTrainingPropagatesToDropout) {
  util::Rng rng(4);
  Sequential seq = make_mlp(rng, /*with_dropout=*/true);
  seq.set_training(false);
  const Matrix x = Matrix::randn(3, 3, rng);
  // Deterministic in eval mode.
  EXPECT_EQ(seq.forward(x), seq.forward(x));
}

TEST(Sequential, TrainingModeIsStochasticWithDropout) {
  util::Rng rng(5);
  Sequential seq = make_mlp(rng, /*with_dropout=*/true);
  seq.set_training(true);
  const Matrix x = Matrix::randn(8, 3, rng);
  const Matrix y1 = seq.forward(x);
  const Matrix y2 = seq.forward(x);
  EXPECT_GT(Matrix::max_abs_diff(y1, y2), 0.0);
}

TEST(Sequential, ModuleAccess) {
  util::Rng rng(6);
  Sequential seq = make_mlp(rng);
  EXPECT_EQ(seq.num_modules(), 4u);
  EXPECT_EQ(seq.module(0).describe(), "Linear(3 -> 8, bias)");
  EXPECT_THROW(seq.module(9), std::out_of_range);
}

TEST(Sequential, DescribeListsModules) {
  util::Rng rng(7);
  Sequential seq = make_mlp(rng);
  const std::string d = seq.describe();
  EXPECT_NE(d.find("Linear(3 -> 8, bias)"), std::string::npos);
  EXPECT_NE(d.find("SELU"), std::string::npos);
}

TEST(Sequential, SetTrainableAffectsAllParameters) {
  util::Rng rng(8);
  Sequential seq = make_mlp(rng);
  seq.set_trainable(false);
  for (auto* p : seq.parameters()) EXPECT_FALSE(p->trainable);
}

TEST(Sequential, BackwardMatchesChainRule) {
  // y = W2 * selu(W1 x); compare against a manually composed pipeline.
  util::Rng rng(9);
  Linear l1(2, 3, false, Init::kHeNormal, rng);
  Selu a1;
  Linear l2(3, 1, false, Init::kHeNormal, rng);

  Sequential seq;
  seq.emplace<Linear>(2, 3, false, Init::kZeros, rng);
  // Copy weights so the two pipelines are identical.
  static_cast<Linear&>(seq.module(0)).weight().value = l1.weight().value;
  seq.add(std::make_unique<Selu>());
  seq.emplace<Linear>(3, 1, false, Init::kZeros, rng);
  static_cast<Linear&>(seq.module(2)).weight().value = l2.weight().value;

  const Matrix x = Matrix::randn(4, 2, rng);
  const Matrix manual = l2.forward(a1.forward(l1.forward(x)));
  const Matrix packed = seq.forward(x);
  EXPECT_LT(Matrix::max_abs_diff(manual, packed), 1e-12);

  const Matrix grad_out = Matrix::ones(4, 1);
  const Matrix manual_grad = l1.backward(a1.backward(l2.backward(grad_out)));
  const Matrix packed_grad = seq.backward(grad_out);
  EXPECT_LT(Matrix::max_abs_diff(manual_grad, packed_grad), 1e-12);
}

}  // namespace
}  // namespace bellamy::nn
