#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

Parameter make_param(double value) { return Parameter("p", Matrix{{value}}); }

TEST(Optimizer, RejectsNonPositiveLr) {
  Parameter p = make_param(1.0);
  EXPECT_THROW(Sgd({&p}, 0.0), std::invalid_argument);
  EXPECT_THROW(Sgd({&p}, -1.0), std::invalid_argument);
  Sgd opt({&p}, 0.1);
  EXPECT_THROW(opt.set_learning_rate(0.0), std::invalid_argument);
}

TEST(Sgd, SingleStep) {
  Parameter p = make_param(1.0);
  p.grad = Matrix{{0.5}};
  Sgd opt({&p}, 0.1);
  opt.step();
  EXPECT_DOUBLE_EQ(p.value(0, 0), 1.0 - 0.1 * 0.5);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p = make_param(0.0);
  Sgd opt({&p}, 1.0, /*momentum=*/0.9);
  p.grad = Matrix{{1.0}};
  opt.step();  // v = 1, p = -1
  EXPECT_DOUBLE_EQ(p.value(0, 0), -1.0);
  opt.step();  // v = 1.9, p = -2.9
  EXPECT_DOUBLE_EQ(p.value(0, 0), -2.9);
}

TEST(Sgd, WeightDecayShrinksParameters) {
  Parameter p = make_param(10.0);
  p.grad = Matrix{{0.0}};
  Sgd opt({&p}, 0.1, 0.0, /*weight_decay=*/0.5);
  opt.step();
  EXPECT_DOUBLE_EQ(p.value(0, 0), 10.0 - 0.1 * 0.5 * 10.0);
}

TEST(Sgd, SkipsFrozenParameters) {
  Parameter p = make_param(1.0);
  p.grad = Matrix{{1.0}};
  p.trainable = false;
  Sgd opt({&p}, 0.1);
  opt.step();
  EXPECT_DOUBLE_EQ(p.value(0, 0), 1.0);
}

TEST(Adam, FirstStepMovesByLr) {
  // With bias correction the very first Adam update is ≈ lr * sign(grad).
  Parameter p = make_param(0.0);
  p.grad = Matrix{{3.7}};
  Adam::Config cfg;
  cfg.lr = 0.01;
  Adam opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value(0, 0), -0.01, 1e-6);
}

TEST(Adam, MatchesReferenceImplementationTwoSteps) {
  // Hand-computed Adam reference with constant gradient 1.0.
  Parameter p = make_param(0.0);
  Adam::Config cfg;
  cfg.lr = 0.1;
  cfg.beta1 = 0.9;
  cfg.beta2 = 0.999;
  cfg.eps = 1e-8;
  Adam opt({&p}, cfg);

  double m = 0.0;
  double v = 0.0;
  double ref = 0.0;
  for (int t = 1; t <= 2; ++t) {
    const double g = 1.0;
    m = 0.9 * m + 0.1 * g;
    v = 0.999 * v + 0.001 * g * g;
    const double mh = m / (1.0 - std::pow(0.9, t));
    const double vh = v / (1.0 - std::pow(0.999, t));
    ref -= 0.1 * mh / (std::sqrt(vh) + 1e-8);

    p.grad = Matrix{{g}};
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), ref, 1e-12);
}

TEST(Adam, WeightDecayAddsToGradient) {
  Parameter with_wd = make_param(1.0);
  Parameter no_wd = make_param(1.0);
  with_wd.grad = Matrix{{0.0}};
  no_wd.grad = Matrix{{0.0}};
  Adam::Config cfg;
  cfg.lr = 0.01;
  cfg.weight_decay = 0.1;
  Adam opt1({&with_wd}, cfg);
  cfg.weight_decay = 0.0;
  Adam opt2({&no_wd}, cfg);
  opt1.step();
  opt2.step();
  EXPECT_LT(with_wd.value(0, 0), no_wd.value(0, 0));
}

TEST(Adam, SkipsFrozenParameters) {
  Parameter p = make_param(2.0);
  p.grad = Matrix{{1.0}};
  p.trainable = false;
  Adam opt({&p}, Adam::Config{});
  opt.step();
  EXPECT_DOUBLE_EQ(p.value(0, 0), 2.0);
}

TEST(Adam, StatePersistsAcrossFreezeToggle) {
  // Freezing then unfreezing must not reset the moment estimates.
  Parameter p = make_param(0.0);
  Adam::Config cfg;
  cfg.lr = 0.1;
  Adam opt({&p}, cfg);
  p.grad = Matrix{{1.0}};
  opt.step();
  const double after_one = p.value(0, 0);
  p.trainable = false;
  opt.step();
  EXPECT_DOUBLE_EQ(p.value(0, 0), after_one);
  p.trainable = true;
  p.grad = Matrix{{1.0}};
  opt.step();  // t advances to 2 for this parameter
  EXPECT_LT(p.value(0, 0), after_one);
}

TEST(Adam, RejectsInvalidBetas) {
  Parameter p = make_param(0.0);
  Adam::Config cfg;
  cfg.beta1 = 1.0;
  EXPECT_THROW(Adam({&p}, cfg), std::invalid_argument);
}

TEST(Adam, ConvergesOnQuadratic) {
  // min (w - 3)^2 — Adam should reach the optimum.
  Parameter w = make_param(0.0);
  Adam::Config cfg;
  cfg.lr = 0.1;
  Adam opt({&w}, cfg);
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    w.grad(0, 0) = 2.0 * (w.value(0, 0) - 3.0);
    opt.step();
  }
  EXPECT_NEAR(w.value(0, 0), 3.0, 1e-3);
}

TEST(Adam, TrainsLinearRegressionToLowLoss) {
  // Fit y = 2x - 1 with a single Linear layer.
  util::Rng rng(1);
  Linear layer(1, 1, true, Init::kHeNormal, rng);
  Adam::Config cfg;
  cfg.lr = 0.05;
  Adam opt(layer.parameters(), cfg);

  Matrix x(16, 1);
  Matrix y(16, 1);
  for (int i = 0; i < 16; ++i) {
    x(i, 0) = static_cast<double>(i) / 8.0 - 1.0;
    y(i, 0) = 2.0 * x(i, 0) - 1.0;
  }
  double loss = 0.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    opt.zero_grad();
    const Matrix pred = layer.forward(x);
    const auto res = mse_loss(pred, y);
    loss = res.value;
    layer.backward(res.grad);
    opt.step();
  }
  EXPECT_LT(loss, 1e-4);
  EXPECT_NEAR(layer.weight().value(0, 0), 2.0, 0.05);
  EXPECT_NEAR(layer.bias().value(0, 0), -1.0, 0.05);
}

TEST(Optimizer, ZeroGradClearsAll) {
  Parameter a = make_param(1.0);
  Parameter b = make_param(2.0);
  a.grad = Matrix{{5.0}};
  b.grad = Matrix{{6.0}};
  Sgd opt({&a, &b}, 0.1);
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(a.grad(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(b.grad(0, 0), 0.0);
}

}  // namespace
}  // namespace bellamy::nn
