#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

TEST(Checkpoint, RoundTripMeta) {
  Checkpoint ckpt;
  ckpt.meta["algorithm"] = "sgd";
  ckpt.meta["note"] = "value with spaces";
  std::stringstream ss;
  ckpt.save(ss);
  const Checkpoint back = Checkpoint::load(ss);
  EXPECT_EQ(back.meta_value("algorithm"), "sgd");
  EXPECT_EQ(back.meta_value("note"), "value with spaces");
}

TEST(Checkpoint, RoundTripMatricesBitExact) {
  util::Rng rng(1);
  Checkpoint ckpt;
  ckpt.matrices.emplace("w", Matrix::randn(7, 5, rng));
  ckpt.matrices.emplace("tiny", Matrix{{1e-300, -0.0, 3.14159265358979}});
  std::stringstream ss;
  ckpt.save(ss);
  const Checkpoint back = Checkpoint::load(ss);
  EXPECT_EQ(back.matrix("w"), ckpt.matrix("w"));  // exact (hex float format)
  EXPECT_EQ(back.matrix("tiny"), ckpt.matrix("tiny"));
}

TEST(Checkpoint, MissingMatrixThrows) {
  Checkpoint ckpt;
  EXPECT_THROW(ckpt.matrix("nope"), std::runtime_error);
  EXPECT_THROW(ckpt.meta_value("nope"), std::runtime_error);
  EXPECT_FALSE(ckpt.has_matrix("nope"));
}

TEST(Checkpoint, BadMagicThrows) {
  std::stringstream ss("not-a-checkpoint\n");
  EXPECT_THROW(Checkpoint::load(ss), std::runtime_error);
}

TEST(Checkpoint, TruncatedDataThrows) {
  Checkpoint ckpt;
  ckpt.matrices.emplace("w", Matrix(2, 2, 1.0));
  std::stringstream ss;
  ckpt.save(ss);
  std::string text = ss.str();
  text.resize(text.size() - 10);
  std::stringstream cut(text);
  EXPECT_THROW(Checkpoint::load(cut), std::runtime_error);
}

TEST(Checkpoint, RejectsWhitespaceNames) {
  Checkpoint ckpt;
  ckpt.matrices.emplace("bad name", Matrix(1, 1));
  std::stringstream ss;
  EXPECT_THROW(ckpt.save(ss), std::invalid_argument);
}

TEST(Checkpoint, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bellamy_ckpt_test.txt").string();
  Checkpoint ckpt;
  ckpt.meta["k"] = "v";
  ckpt.matrices.emplace("m", Matrix{{1.5, 2.5}});
  ckpt.save_file(path);
  const Checkpoint back = Checkpoint::load_file(path);
  EXPECT_EQ(back.matrix("m"), ckpt.matrix("m"));
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadMissingFileThrows) {
  EXPECT_THROW(Checkpoint::load_file("/nonexistent/x.ckpt"), std::runtime_error);
}

TEST(StoreRestoreParameters, RoundTripThroughModule) {
  util::Rng rng(2);
  Sequential net;
  net.emplace<Linear>(3, 4, true, Init::kHeNormal, rng, "a");
  net.add(make_activation(Activation::kSelu));
  net.emplace<Linear>(4, 2, true, Init::kHeNormal, rng, "b");

  Checkpoint ckpt;
  store_parameters(ckpt, net);
  EXPECT_EQ(ckpt.matrices.size(), 4u);

  // Perturb, then restore.
  for (Parameter* p : net.parameters()) p->value *= 2.0;
  restore_parameters(ckpt, net);
  const Matrix x = Matrix::randn(2, 3, rng);
  // A second net restored from the same checkpoint computes identically.
  util::Rng rng2(99);
  Sequential net2;
  net2.emplace<Linear>(3, 4, true, Init::kHeNormal, rng2, "a");
  net2.add(make_activation(Activation::kSelu));
  net2.emplace<Linear>(4, 2, true, Init::kHeNormal, rng2, "b");
  restore_parameters(ckpt, net2);
  EXPECT_LT(Matrix::max_abs_diff(net.forward(x), net2.forward(x)), 1e-15);
}

TEST(StoreRestoreParameters, ShapeMismatchThrows) {
  util::Rng rng(3);
  Sequential net;
  net.emplace<Linear>(3, 4, false, Init::kHeNormal, rng, "a");
  Checkpoint ckpt;
  ckpt.matrices.emplace("a.weight", Matrix(2, 2));
  EXPECT_THROW(restore_parameters(ckpt, net), std::runtime_error);
}

TEST(StoreRestoreParameters, DuplicateNameThrows) {
  util::Rng rng(4);
  Sequential net;
  net.emplace<Linear>(2, 2, false, Init::kHeNormal, rng, "dup");
  net.emplace<Linear>(2, 2, false, Init::kHeNormal, rng, "dup");
  Checkpoint ckpt;
  EXPECT_THROW(store_parameters(ckpt, net), std::runtime_error);
}

}  // namespace
}  // namespace bellamy::nn
