#include "nn/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

TEST(Selu, PositiveBranchIsScaledIdentity) {
  EXPECT_NEAR(selu(2.0), kSeluScale * 2.0, 1e-12);
}

TEST(Selu, NegativeBranchSaturates) {
  // As x -> -inf, selu(x) -> -scale * alpha.
  EXPECT_NEAR(selu(-100.0), -kSeluScale * kSeluAlpha, 1e-9);
}

TEST(Selu, ContinuousAtZero) {
  EXPECT_NEAR(selu(1e-12), selu(-1e-12), 1e-9);
  EXPECT_NEAR(selu(0.0), 0.0, 1e-15);
}

TEST(Selu, DerivativeMatchesFiniteDifference) {
  for (double x : {-2.0, -0.5, 0.3, 1.7}) {
    const double h = 1e-7;
    const double numeric = (selu(x + h) - selu(x - h)) / (2.0 * h);
    EXPECT_NEAR(selu_derivative(x), numeric, 1e-6) << "at x=" << x;
  }
}

TEST(Selu, SelfNormalizingFixedPointProperty) {
  // SELU approximately preserves zero mean / unit variance of its input —
  // the property the paper relies on to avoid vanishing/exploding gradients.
  util::Rng rng(1);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double y = selu(rng.normal());
    sum += y;
    sq += y * y;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(SeluModule, GradCheck) {
  util::Rng rng(2);
  Selu act;
  const auto result = grad_check(act, Matrix::randn(4, 6, rng));
  EXPECT_TRUE(result.ok(1e-6));
}

TEST(TanhModule, ForwardValues) {
  Tanh act;
  const Matrix y = act.forward(Matrix{{0.0, 1.0, -1.0}});
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_NEAR(y(0, 1), std::tanh(1.0), 1e-12);
  EXPECT_NEAR(y(0, 2), -std::tanh(1.0), 1e-12);
}

TEST(TanhModule, GradCheck) {
  util::Rng rng(3);
  Tanh act;
  EXPECT_TRUE(grad_check(act, Matrix::randn(3, 5, rng)).ok(1e-6));
}

TEST(ReluModule, ForwardClampsNegatives) {
  Relu act;
  const Matrix y = act.forward(Matrix{{-2.0, 0.0, 3.0}});
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 3.0);
}

TEST(ReluModule, GradCheckAwayFromKink) {
  util::Rng rng(4);
  Relu act;
  // Shift inputs away from 0 so finite differences are valid.
  Matrix x = Matrix::randn(4, 4, rng);
  x.apply_inplace([](double v) { return v + (v >= 0.0 ? 0.5 : -0.5); });
  EXPECT_TRUE(grad_check(act, x).ok(1e-6));
}

TEST(SigmoidModule, ForwardValues) {
  Sigmoid act;
  const Matrix y = act.forward(Matrix{{0.0}});
  EXPECT_DOUBLE_EQ(y(0, 0), 0.5);
}

TEST(SigmoidModule, GradCheck) {
  util::Rng rng(5);
  Sigmoid act;
  EXPECT_TRUE(grad_check(act, Matrix::randn(3, 3, rng)).ok(1e-6));
}

TEST(IdentityModule, PassThrough) {
  Identity act;
  const Matrix x{{1.0, -2.0}};
  EXPECT_EQ(act.forward(x), x);
  EXPECT_EQ(act.backward(x), x);
}

TEST(ActivationFactory, CreatesEveryKind) {
  for (auto kind : {Activation::kSelu, Activation::kTanh, Activation::kRelu,
                    Activation::kSigmoid, Activation::kIdentity}) {
    auto act = make_activation(kind);
    ASSERT_NE(act, nullptr);
    EXPECT_NO_THROW(act->forward(Matrix(1, 1, 0.3)));
  }
}

TEST(ActivationFactory, Names) {
  EXPECT_STREQ(activation_name(Activation::kSelu), "selu");
  EXPECT_STREQ(activation_name(Activation::kTanh), "tanh");
}

}  // namespace
}  // namespace bellamy::nn
