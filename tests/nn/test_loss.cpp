#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

TEST(MseLoss, ValueAndGradient) {
  const Matrix pred{{1.0, 2.0}};
  const Matrix target{{0.0, 4.0}};
  const auto res = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(res.value, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(res.grad(0, 0), 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(res.grad(0, 1), 2.0 * -2.0 / 2.0);
}

TEST(MseLoss, PerfectPredictionZero) {
  const Matrix m{{3.0}, {4.0}};
  const auto res = mse_loss(m, m);
  EXPECT_DOUBLE_EQ(res.value, 0.0);
  EXPECT_DOUBLE_EQ(res.grad.squared_norm(), 0.0);
}

TEST(MseLoss, ShapeMismatchThrows) {
  EXPECT_THROW(mse_loss(Matrix(1, 2), Matrix(2, 1)), std::invalid_argument);
}

TEST(MseLoss, GradientMatchesFiniteDifference) {
  util::Rng rng(1);
  Matrix pred = Matrix::randn(3, 2, rng);
  const Matrix target = Matrix::randn(3, 2, rng);
  const auto res = mse_loss(pred, target);
  const double eps = 1e-7;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double orig = pred.data()[i];
    pred.data()[i] = orig + eps;
    const double up = mse_loss(pred, target).value;
    pred.data()[i] = orig - eps;
    const double down = mse_loss(pred, target).value;
    pred.data()[i] = orig;
    EXPECT_NEAR(res.grad.data()[i], (up - down) / (2.0 * eps), 1e-6);
  }
}

TEST(HuberLoss, QuadraticRegion) {
  const Matrix pred{{0.5}};
  const Matrix target{{0.0}};
  const auto res = huber_loss(pred, target, 1.0);
  EXPECT_DOUBLE_EQ(res.value, 0.5 * 0.25);
  EXPECT_DOUBLE_EQ(res.grad(0, 0), 0.5);
}

TEST(HuberLoss, LinearRegion) {
  const Matrix pred{{3.0}};
  const Matrix target{{0.0}};
  const auto res = huber_loss(pred, target, 1.0);
  EXPECT_DOUBLE_EQ(res.value, 1.0 * (3.0 - 0.5));
  EXPECT_DOUBLE_EQ(res.grad(0, 0), 1.0);
}

TEST(HuberLoss, NegativeLinearRegion) {
  const Matrix pred{{-4.0}};
  const Matrix target{{0.0}};
  const auto res = huber_loss(pred, target, 2.0);
  EXPECT_DOUBLE_EQ(res.value, 2.0 * (4.0 - 1.0));
  EXPECT_DOUBLE_EQ(res.grad(0, 0), -2.0);
}

TEST(HuberLoss, ContinuousAtDelta) {
  const Matrix target{{0.0}};
  const double delta = 1.0;
  const auto below = huber_loss(Matrix{{delta - 1e-9}}, target, delta);
  const auto above = huber_loss(Matrix{{delta + 1e-9}}, target, delta);
  EXPECT_NEAR(below.value, above.value, 1e-8);
  EXPECT_NEAR(below.grad(0, 0), above.grad(0, 0), 1e-8);
}

TEST(HuberLoss, MatchesMseForSmallErrors) {
  // Within |e| <= delta, Huber = 0.5 e^2 (i.e. MSE/2).
  util::Rng rng(2);
  Matrix pred = Matrix::rand_uniform(2, 3, rng, -0.4, 0.4);
  const Matrix target = Matrix::zeros(2, 3);
  const auto huber = huber_loss(pred, target, 1.0);
  const auto mse = mse_loss(pred, target);
  EXPECT_NEAR(huber.value, 0.5 * mse.value, 1e-12);
}

TEST(HuberLoss, InvalidDeltaThrows) {
  EXPECT_THROW(huber_loss(Matrix(1, 1), Matrix(1, 1), 0.0), std::invalid_argument);
  EXPECT_THROW(huber_loss(Matrix(1, 1), Matrix(1, 1), -1.0), std::invalid_argument);
}

TEST(HuberLoss, GradientMatchesFiniteDifference) {
  util::Rng rng(3);
  Matrix pred = Matrix::randn(2, 2, rng) * 2.0;  // spans both regions
  const Matrix target = Matrix::zeros(2, 2);
  const auto res = huber_loss(pred, target, 1.0);
  const double eps = 1e-7;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double orig = pred.data()[i];
    pred.data()[i] = orig + eps;
    const double up = huber_loss(pred, target, 1.0).value;
    pred.data()[i] = orig - eps;
    const double down = huber_loss(pred, target, 1.0).value;
    pred.data()[i] = orig;
    EXPECT_NEAR(res.grad.data()[i], (up - down) / (2.0 * eps), 1e-6);
  }
}

TEST(MaeLoss, ValueAndSignGradient) {
  const Matrix pred{{2.0, -3.0, 1.0}};
  const Matrix target{{1.0, -1.0, 1.0}};
  const auto res = mae_loss(pred, target);
  EXPECT_DOUBLE_EQ(res.value, (1.0 + 2.0 + 0.0) / 3.0);
  EXPECT_DOUBLE_EQ(res.grad(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(res.grad(0, 1), -1.0 / 3.0);
  EXPECT_DOUBLE_EQ(res.grad(0, 2), 0.0);
}

TEST(Losses, EmptyInputThrows) {
  EXPECT_THROW(mse_loss(Matrix(), Matrix()), std::invalid_argument);
  EXPECT_THROW(huber_loss(Matrix(), Matrix()), std::invalid_argument);
  EXPECT_THROW(mae_loss(Matrix(), Matrix()), std::invalid_argument);
}

}  // namespace
}  // namespace bellamy::nn
