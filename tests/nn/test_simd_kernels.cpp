// SIMD-vs-scalar parity for every kernel in nn/simd.hpp, swept over odd
// lengths (1, 7, 31, 4096+3) so full blocks, short arrays, and ragged tails
// are all exercised.
//
//  * Arithmetic kernels must match the portable reference EXACTLY (both
//    paths spell out their fused multiply-adds, so rounding is identical).
//  * Transcendental kernels (selu forward/backward) use a vectorized exp on
//    the AVX2 path and agree with std::exp to ~1 ulp — compared with a tight
//    absolute+relative tolerance.
//  * Loss VALUES accumulate in vector lanes (different summation order) and
//    are compared with a relative tolerance; loss GRADIENTS are exact.
//  * Split-processing tests certify position independence: processing an
//    array in two pieces equals processing it whole, the property chunked
//    prediction relies on.
//
// On hardware without AVX2 the dispatch falls back to the reference and the
// suite degenerates to a self-check, which is the intended behaviour.

#include "nn/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace bellamy::nn::simd {
namespace {

const std::size_t kLengths[] = {1, 7, 31, 4096 + 3};

std::vector<double> random_values(std::size_t n, std::uint64_t seed, double scale = 3.0) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(0.0, scale);
  // Sprinkle exact zeros and larger magnitudes so branchy kernels see every
  // path (quadratic/linear huber arms, relu kink, selu saturation).
  if (n > 2) v[n / 2] = 0.0;
  if (n > 4) v[n / 4] = 50.0;
  if (n > 8) v[3 * n / 4] = -50.0;
  return v;
}

void expect_exact(const std::vector<double>& got, const std::vector<double>& want,
                  const char* what, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], want[i]) << what << " length " << n << " index " << i;
  }
}

void expect_close(const std::vector<double>& got, const std::vector<double>& want,
                  const char* what, std::size_t n, double tol) {
  for (std::size_t i = 0; i < n; ++i) {
    const double bound = tol * (1.0 + std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], bound) << what << " length " << n << " index " << i;
  }
}

TEST(SimdKernels, ScaleParityExact) {
  for (const std::size_t n : kLengths) {
    auto a = random_values(n, 11);
    auto b = a;
    scale(a.data(), n, 1.7);
    ref::scale(b.data(), n, 1.7);
    expect_exact(a, b, "scale", n);
  }
}

TEST(SimdKernels, AxpyParityExact) {
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n, 13);
    auto y1 = random_values(n, 14);
    auto y2 = y1;
    axpy(y1.data(), x.data(), n, -0.37);
    ref::axpy(y2.data(), x.data(), n, -0.37);
    expect_exact(y1, y2, "axpy", n);
  }
}

TEST(SimdKernels, AddSubMulParityExact) {
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n, 17);
    auto y1 = random_values(n, 18);
    auto y2 = y1;
    add(y1.data(), x.data(), n);
    ref::add(y2.data(), x.data(), n);
    expect_exact(y1, y2, "add", n);
    sub(y1.data(), x.data(), n);
    ref::sub(y2.data(), x.data(), n);
    expect_exact(y1, y2, "sub", n);
    mul(y1.data(), x.data(), n);
    ref::mul(y2.data(), x.data(), n);
    expect_exact(y1, y2, "mul", n);
  }
}

TEST(SimdKernels, ReluForwardBackwardParityExact) {
  for (const std::size_t n : kLengths) {
    auto x1 = random_values(n, 19);
    auto x2 = x1;
    relu_forward(x1.data(), n);
    ref::relu_forward(x2.data(), n);
    expect_exact(x1, x2, "relu_forward", n);

    const auto x = random_values(n, 20);
    auto g1 = random_values(n, 21);
    auto g2 = g1;
    relu_backward(g1.data(), x.data(), n);
    ref::relu_backward(g2.data(), x.data(), n);
    expect_exact(g1, g2, "relu_backward", n);
  }
}

TEST(SimdKernels, TanhSigmoidBackwardParityExact) {
  for (const std::size_t n : kLengths) {
    // Backward inputs are activation OUTPUTS: tanh in (-1,1), sigmoid (0,1).
    auto y = random_values(n, 23, 0.5);
    for (auto& v : y) v = std::tanh(v);
    auto g1 = random_values(n, 24);
    auto g2 = g1;
    tanh_backward(g1.data(), y.data(), n);
    ref::tanh_backward(g2.data(), y.data(), n);
    expect_exact(g1, g2, "tanh_backward", n);

    for (auto& v : y) v = 0.5 * (v + 1.0);
    g1 = random_values(n, 25);
    g2 = g1;
    sigmoid_backward(g1.data(), y.data(), n);
    ref::sigmoid_backward(g2.data(), y.data(), n);
    expect_exact(g1, g2, "sigmoid_backward", n);
  }
}

TEST(SimdKernels, SeluForwardBackwardParityClose) {
  for (const std::size_t n : kLengths) {
    auto x1 = random_values(n, 27);
    auto x2 = x1;
    selu_forward(x1.data(), n);
    ref::selu_forward(x2.data(), n);
    expect_close(x1, x2, "selu_forward", n, 1e-13);

    const auto x = random_values(n, 28);
    auto g1 = random_values(n, 29);
    auto g2 = g1;
    selu_backward(g1.data(), x.data(), n);
    ref::selu_backward(g2.data(), x.data(), n);
    expect_close(g1, g2, "selu_backward", n, 1e-13);
  }
}

TEST(SimdKernels, AdamUpdateParityExact) {
  AdamStep s;
  s.beta1 = 0.9;
  s.beta2 = 0.999;
  s.bias1 = 1.0 - 0.9 * 0.9;
  s.bias2 = 1.0 - 0.999 * 0.999;
  s.lr = 1e-2;
  s.eps = 1e-8;
  s.weight_decay = 1e-3;
  for (const std::size_t n : kLengths) {
    auto w1 = random_values(n, 31);
    auto m1 = random_values(n, 32, 0.1);
    std::vector<double> v1 = random_values(n, 33, 0.1);
    for (auto& v : v1) v = std::abs(v);  // second moments are non-negative
    const auto g = random_values(n, 34);
    auto w2 = w1;
    auto m2 = m1;
    auto v2 = v1;
    adam_update(w1.data(), g.data(), m1.data(), v1.data(), n, s);
    ref::adam_update(w2.data(), g.data(), m2.data(), v2.data(), n, s);
    expect_exact(w1, w2, "adam_update w", n);
    expect_exact(m1, m2, "adam_update m", n);
    expect_exact(v1, v2, "adam_update v", n);
  }
}

TEST(SimdKernels, LossGradExactValueClose) {
  for (const std::size_t n : kLengths) {
    const auto pred = random_values(n, 41);
    auto target = random_values(n, 42);
    target[0] = pred[0];  // exercise the e == 0 gradient case
    const double inv_n = 1.0 / static_cast<double>(n);
    std::vector<double> g1(n), g2(n);

    const double mse1 = mse_loss_grad(pred.data(), target.data(), g1.data(), n, inv_n);
    const double mse2 = ref::mse_loss_grad(pred.data(), target.data(), g2.data(), n, inv_n);
    expect_exact(g1, g2, "mse grad", n);
    EXPECT_NEAR(mse1, mse2, 1e-12 * (1.0 + std::abs(mse2))) << "mse value length " << n;

    const double hu1 =
        huber_loss_grad(pred.data(), target.data(), g1.data(), n, 1.0, inv_n);
    const double hu2 =
        ref::huber_loss_grad(pred.data(), target.data(), g2.data(), n, 1.0, inv_n);
    expect_exact(g1, g2, "huber grad", n);
    EXPECT_NEAR(hu1, hu2, 1e-12 * (1.0 + std::abs(hu2))) << "huber value length " << n;

    const double mae1 = mae_loss_grad(pred.data(), target.data(), g1.data(), n, inv_n);
    const double mae2 = ref::mae_loss_grad(pred.data(), target.data(), g2.data(), n, inv_n);
    expect_exact(g1, g2, "mae grad", n);
    EXPECT_NEAR(mae1, mae2, 1e-12 * (1.0 + std::abs(mae2))) << "mae value length " << n;
  }
}

// Position independence: processing an array in two arbitrary pieces must
// give bit-identical results to processing it whole (masked tails route the
// ragged end through the same lane arithmetic).  This is the element-wise
// half of the chunked-prediction bit-identity guarantee.
TEST(SimdKernels, SplitProcessingIsBitIdentical) {
  const std::size_t n = 1003;
  for (const std::size_t split : {std::size_t{1}, std::size_t{5}, std::size_t{512}}) {
    auto whole = random_values(n, 51);
    auto parts = whole;
    selu_forward(whole.data(), n);
    selu_forward(parts.data(), split);
    selu_forward(parts.data() + split, n - split);
    expect_exact(parts, whole, "selu_forward split", n);

    const auto x = random_values(n, 52);
    auto gw = random_values(n, 53);
    auto gp = gw;
    selu_backward(gw.data(), x.data(), n);
    selu_backward(gp.data(), x.data(), split);
    selu_backward(gp.data() + split, x.data() + split, n - split);
    expect_exact(gp, gw, "selu_backward split", n);

    auto sw = random_values(n, 54);
    auto sp = sw;
    scale(sw.data(), n, 0.77);
    scale(sp.data(), split, 0.77);
    scale(sp.data() + split, n - split, 0.77);
    expect_exact(sp, sw, "scale split", n);
  }
}

TEST(SimdKernels, ZeroLengthIsSafe) {
  double dummy = 1.0;
  scale(&dummy, 0, 2.0);
  axpy(&dummy, &dummy, 0, 2.0);
  selu_forward(&dummy, 0);
  EXPECT_EQ(dummy, 1.0);
  std::vector<double> g;
  EXPECT_EQ(mse_loss_grad(g.data(), g.data(), g.data(), 0, 1.0), 0.0);
}

}  // namespace
}  // namespace bellamy::nn::simd
