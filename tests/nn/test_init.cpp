#include "nn/init.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

double sample_variance(const Matrix& m) {
  const double mean = m.mean();
  double var = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double d = m.data()[i] - mean;
    var += d * d;
  }
  return var / static_cast<double>(m.size() - 1);
}

TEST(Init, HeNormalVariance) {
  util::Rng rng(1);
  const std::size_t fan_in = 64;
  const Matrix w = make_weights(Init::kHeNormal, 256, fan_in, rng);
  EXPECT_NEAR(sample_variance(w), 2.0 / static_cast<double>(fan_in),
              0.15 * 2.0 / static_cast<double>(fan_in));
  EXPECT_NEAR(w.mean(), 0.0, 0.01);
}

TEST(Init, LeCunNormalVariance) {
  util::Rng rng(2);
  const std::size_t fan_in = 100;
  const Matrix w = make_weights(Init::kLeCunNormal, 200, fan_in, rng);
  EXPECT_NEAR(sample_variance(w), 1.0 / static_cast<double>(fan_in),
              0.15 / static_cast<double>(fan_in));
}

TEST(Init, XavierNormalVariance) {
  util::Rng rng(3);
  const Matrix w = make_weights(Init::kXavierNormal, 100, 100, rng);
  EXPECT_NEAR(sample_variance(w), 2.0 / 200.0, 0.15 * 2.0 / 200.0);
}

TEST(Init, ZerosAreZero) {
  util::Rng rng(4);
  const Matrix w = make_weights(Init::kZeros, 5, 5, rng);
  EXPECT_DOUBLE_EQ(w.squared_norm(), 0.0);
}

TEST(Init, ShapeIsFanOutByFanIn) {
  util::Rng rng(5);
  const Matrix w = make_weights(Init::kHeNormal, 3, 7, rng);
  EXPECT_EQ(w.rows(), 3u);
  EXPECT_EQ(w.cols(), 7u);
}

TEST(Init, ZeroFanInThrows) {
  util::Rng rng(6);
  EXPECT_THROW(make_weights(Init::kHeNormal, 3, 0, rng), std::invalid_argument);
}

TEST(Init, Names) {
  EXPECT_STREQ(init_name(Init::kHeNormal), "he_normal");
  EXPECT_STREQ(init_name(Init::kLeCunNormal), "lecun_normal");
  EXPECT_STREQ(init_name(Init::kXavierNormal), "xavier_normal");
  EXPECT_STREQ(init_name(Init::kZeros), "zeros");
}

TEST(Init, DeterministicGivenSeed) {
  util::Rng rng1(42);
  util::Rng rng2(42);
  const Matrix a = make_weights(Init::kHeNormal, 4, 4, rng1);
  const Matrix b = make_weights(Init::kHeNormal, 4, 4, rng2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bellamy::nn
