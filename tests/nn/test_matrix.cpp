#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, DataSizeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 2, std::vector<double>{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transposed) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, TransposeTwiceIsIdentity) {
  util::Rng rng(1);
  const Matrix m = Matrix::randn(5, 7, rng);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, Reshaped) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix r = m.reshaped(1, 4);
  EXPECT_DOUBLE_EQ(r(0, 3), 4.0);
  EXPECT_THROW(m.reshaped(3, 2), std::invalid_argument);
}

TEST(Matrix, SliceRows) {
  Matrix m{{1.0}, {2.0}, {3.0}};
  const Matrix s = m.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 2.0);
  EXPECT_THROW(m.slice_rows(2, 4), std::out_of_range);
}

TEST(Matrix, SliceCols) {
  Matrix m{{1.0, 2.0, 3.0}};
  const Matrix s = m.slice_cols(1, 3);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 3.0);
}

TEST(Matrix, GatherRows) {
  Matrix m{{1.0}, {2.0}, {3.0}};
  const std::vector<std::size_t> idx{2, 0};
  const Matrix g = m.gather_rows(idx);
  EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 1.0);
}

TEST(Matrix, HcatVcat) {
  Matrix a{{1.0}, {2.0}};
  Matrix b{{3.0}, {4.0}};
  const Matrix h = Matrix::hcat(a, b);
  EXPECT_EQ(h.cols(), 2u);
  EXPECT_DOUBLE_EQ(h(1, 1), 4.0);
  const Matrix v = Matrix::vcat(a, b);
  EXPECT_EQ(v.rows(), 4u);
  EXPECT_DOUBLE_EQ(v(3, 0), 4.0);
}

TEST(Matrix, HcatShapeMismatchThrows) {
  Matrix a(2, 1);
  Matrix b(3, 1);
  EXPECT_THROW(Matrix::hcat(a, b), std::invalid_argument);
}

TEST(Matrix, SetCols) {
  Matrix m(2, 4, 0.0);
  Matrix sub{{1.0, 2.0}, {3.0, 4.0}};
  m.set_cols(1, sub);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_THROW(m.set_cols(3, sub), std::invalid_argument);
}

TEST(Matrix, Arithmetic) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 6.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(0, 1), 4.0);
  EXPECT_DOUBLE_EQ((3.0 * a)(0, 0), 3.0);
}

TEST(Matrix, ArithmeticShapeMismatchThrows) {
  Matrix a(1, 2);
  Matrix b(2, 1);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matrix, Hadamard) {
  Matrix a{{2.0, 3.0}};
  Matrix b{{4.0, 5.0}};
  const Matrix h = a.hadamard(b);
  EXPECT_DOUBLE_EQ(h(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 15.0);
}

TEST(Matrix, ApplyAndAddScaled) {
  Matrix a{{1.0, -2.0}};
  const Matrix sq = a.apply([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(sq(0, 1), 4.0);
  Matrix b{{10.0, 10.0}};
  b.add_scaled(a, 0.5);
  EXPECT_DOUBLE_EQ(b(0, 0), 10.5);
  EXPECT_DOUBLE_EQ(b(0, 1), 9.0);
}

TEST(Matrix, MatmulKnownResult) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = Matrix::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(Matrix::matmul(a, b), std::invalid_argument);
}

TEST(Matrix, MatmulIdentity) {
  util::Rng rng(2);
  const Matrix m = Matrix::randn(4, 4, rng);
  EXPECT_LT(Matrix::max_abs_diff(Matrix::matmul(m, Matrix::identity(4)), m), 1e-15);
}

TEST(Matrix, MatmulTnMatchesExplicitTranspose) {
  util::Rng rng(3);
  const Matrix a = Matrix::randn(6, 4, rng);
  const Matrix b = Matrix::randn(6, 5, rng);
  const Matrix expect = Matrix::matmul(a.transposed(), b);
  EXPECT_LT(Matrix::max_abs_diff(Matrix::matmul_tn(a, b), expect), 1e-12);
}

TEST(Matrix, MatmulNtMatchesExplicitTranspose) {
  util::Rng rng(4);
  const Matrix a = Matrix::randn(3, 7, rng);
  const Matrix b = Matrix::randn(5, 7, rng);
  const Matrix expect = Matrix::matmul(a, b.transposed());
  EXPECT_LT(Matrix::max_abs_diff(Matrix::matmul_nt(a, b), expect), 1e-12);
}

// ---- blocked-GEMM property tests -------------------------------------------
//
// The blocked kernels must agree with the naive matmul*_ref triple loops on
// every shape, in particular around the 64x64 tile and 4x8 register-block
// boundaries.  Tolerances scale with the inner dimension: the blocked path
// may use fused multiply-adds, so results are equal only up to rounding.

double gemm_tol(std::size_t inner) {
  return 1e-13 * static_cast<double>(std::max<std::size_t>(inner, 1));
}

struct GemmShape {
  std::size_t m, k, n;
};

class BlockedGemmSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(BlockedGemmSweep, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(m * 131 + k * 17 + n);
  const Matrix a = Matrix::randn(m, k, rng);
  const Matrix b = Matrix::randn(k, n, rng);
  const Matrix bt = b.transposed();  // (n x k) for the nt variant
  const Matrix at = a.transposed();  // (k x m) for the tn variant
  const double tol = gemm_tol(k);
  EXPECT_LE(Matrix::max_abs_diff(Matrix::matmul(a, b), Matrix::matmul_ref(a, b)), tol);
  EXPECT_LE(Matrix::max_abs_diff(Matrix::matmul_tn(at, b), Matrix::matmul_tn_ref(at, b)),
            tol);
  EXPECT_LE(Matrix::max_abs_diff(Matrix::matmul_nt(a, bt), Matrix::matmul_nt_ref(a, bt)),
            tol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedGemmSweep,
    ::testing::Values(GemmShape{1, 1, 1},       // degenerate scalar
                      GemmShape{1, 40, 8},      // one Bellamy encoder row
                      GemmShape{4, 8, 4},       // exact register block
                      GemmShape{5, 9, 7},       // every remainder path at once
                      GemmShape{63, 65, 66},    // straddles the 64-tile on all dims
                      GemmShape{64, 64, 64},    // exactly one tile
                      GemmShape{64, 128, 72},   // multiple k tiles + ragged j
                      GemmShape{130, 40, 8},    // encoder-shaped, ragged i tile
                      GemmShape{256, 3, 16},    // tiny inner dimension
                      GemmShape{4096, 40, 8}),  // the B=4096 bench forward shape
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "_k" + std::to_string(info.param.k) +
             "_n" + std::to_string(info.param.n);
    });

TEST(Matrix, BlockedGemmRandomizedShapes) {
  // Randomized shape fuzz around the tile/register boundaries.
  util::Rng rng(1234);
  const std::size_t interesting[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                     31, 32, 33, 63, 64, 65, 96, 127, 128, 130};
  const std::size_t count = sizeof(interesting) / sizeof(interesting[0]);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = interesting[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(count) - 1))];
    const std::size_t k = interesting[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(count) - 1))];
    const std::size_t n = interesting[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(count) - 1))];
    const Matrix a = Matrix::randn(m, k, rng);
    const Matrix b = Matrix::randn(k, n, rng);
    const double tol = gemm_tol(k);
    EXPECT_LE(Matrix::max_abs_diff(Matrix::matmul(a, b), Matrix::matmul_ref(a, b)), tol)
        << "m=" << m << " k=" << k << " n=" << n;
    const Matrix bt = b.transposed();
    EXPECT_LE(Matrix::max_abs_diff(Matrix::matmul_nt(a, bt), Matrix::matmul_nt_ref(a, bt)),
              tol)
        << "m=" << m << " k=" << k << " n=" << n;
    const Matrix at = a.transposed();
    EXPECT_LE(Matrix::max_abs_diff(Matrix::matmul_tn(at, b), Matrix::matmul_tn_ref(at, b)),
              tol)
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(Matrix, BlockedGemmZeroDimensionEdges) {
  // 0-row / 0-col operands produce empty (but correctly shaped) outputs.
  const Matrix a0(0, 5);
  const Matrix b(5, 3);
  const Matrix c0 = Matrix::matmul(a0, b);
  EXPECT_EQ(c0.rows(), 0u);
  EXPECT_EQ(c0.cols(), 3u);

  const Matrix a(4, 5);
  const Matrix bn(5, 0);
  const Matrix cn = Matrix::matmul(a, bn);
  EXPECT_EQ(cn.rows(), 4u);
  EXPECT_EQ(cn.cols(), 0u);

  // k = 0: the product over an empty inner dimension is all zeros.
  const Matrix ak(3, 0);
  const Matrix bk(0, 2);
  const Matrix ck = Matrix::matmul(ak, bk);
  EXPECT_EQ(ck.rows(), 3u);
  EXPECT_EQ(ck.cols(), 2u);
  EXPECT_DOUBLE_EQ(ck.squared_norm(), 0.0);

  EXPECT_EQ(Matrix::matmul_tn(Matrix(0, 3), Matrix(0, 2)).rows(), 3u);
  EXPECT_EQ(Matrix::matmul_nt(Matrix(2, 0), Matrix(3, 0)).cols(), 3u);
}

TEST(Matrix, BlockedGemmRowResultsIndependentOfBatchRows) {
  // A row of the output must be bit-identical no matter which batch it is
  // computed in — the invariant that makes chunked prediction exact.
  util::Rng rng(9);
  const Matrix a = Matrix::randn(100, 40, rng);
  const Matrix w = Matrix::randn(8, 40, rng);
  const Matrix full = Matrix::matmul_nt(a, w);
  for (const auto [begin, end] : {std::pair<std::size_t, std::size_t>{0, 1},
                                  std::pair<std::size_t, std::size_t>{37, 59},
                                  std::pair<std::size_t, std::size_t>{95, 100}}) {
    const Matrix part = Matrix::matmul_nt(a.slice_rows(begin, end), w);
    EXPECT_EQ(part, full.slice_rows(begin, end)) << begin << ".." << end;
  }
}

TEST(Matrix, AddRowBroadcast) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Matrix row{{10.0, 20.0}};
  const Matrix out = m.add_row_broadcast(row);
  EXPECT_DOUBLE_EQ(out(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(out(1, 1), 24.0);
  EXPECT_THROW(m.add_row_broadcast(Matrix(1, 3)), std::invalid_argument);
}

TEST(Matrix, ColwiseSumAndMean) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix s = m.colwise_sum();
  EXPECT_DOUBLE_EQ(s(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 6.0);
  const Matrix mn = m.colwise_mean();
  EXPECT_DOUBLE_EQ(mn(0, 0), 2.0);
}

TEST(Matrix, MeanOf) {
  const std::vector<Matrix> ms{Matrix{{2.0}}, Matrix{{4.0}}, Matrix{{6.0}}};
  EXPECT_DOUBLE_EQ(Matrix::mean_of(ms)(0, 0), 4.0);
  EXPECT_THROW(Matrix::mean_of(std::vector<Matrix>{}), std::invalid_argument);
}

TEST(Matrix, Reductions) {
  Matrix m{{-1.0, 2.0}, {3.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), -4.0);
  EXPECT_DOUBLE_EQ(m.max(), 3.0);
  EXPECT_DOUBLE_EQ(m.squared_norm(), 30.0);
}

TEST(Matrix, RandnStatistics) {
  util::Rng rng(5);
  const Matrix m = Matrix::randn(200, 200, rng, 1.0, 2.0);
  EXPECT_NEAR(m.mean(), 1.0, 0.05);
}

TEST(Matrix, RowSpanMutates) {
  Matrix m(2, 3, 0.0);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(Matrix, ShapeStr) {
  EXPECT_EQ(Matrix(2, 3).shape_str(), "(2x3)");
}

}  // namespace
}  // namespace bellamy::nn
