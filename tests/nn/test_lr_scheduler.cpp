#include "nn/lr_scheduler.hpp"

#include <gtest/gtest.h>

namespace bellamy::nn {
namespace {

TEST(ConstantLr, AlwaysSameValue) {
  ConstantLr lr(0.01);
  EXPECT_DOUBLE_EQ(lr.lr_at(0), 0.01);
  EXPECT_DOUBLE_EQ(lr.lr_at(1000), 0.01);
}

TEST(CyclicalLr, RejectsInvalidConfig) {
  EXPECT_THROW(CyclicalLr(0.0, 0.01, 10), std::invalid_argument);
  EXPECT_THROW(CyclicalLr(0.02, 0.01, 10), std::invalid_argument);
  EXPECT_THROW(CyclicalLr(0.001, 0.01, 1), std::invalid_argument);
}

TEST(CyclicalLr, StartsAtBase) {
  CyclicalLr lr(1e-3, 1e-2, 100);
  EXPECT_DOUBLE_EQ(lr.lr_at(0), 1e-3);
}

TEST(CyclicalLr, PeaksMidCycle) {
  CyclicalLr lr(1e-3, 1e-2, 100);
  EXPECT_DOUBLE_EQ(lr.lr_at(50), 1e-2);
}

TEST(CyclicalLr, ReturnsToBaseAtCycleEnd) {
  CyclicalLr lr(1e-3, 1e-2, 100);
  // Step 99 is almost back at base; step 100 starts the next (damped) cycle.
  EXPECT_NEAR(lr.lr_at(99), 1e-3, 2e-4);
  EXPECT_DOUBLE_EQ(lr.lr_at(100), 1e-3);
}

TEST(CyclicalLr, StaysWithinBounds) {
  CyclicalLr lr(1e-3, 1e-2, 64);
  for (std::size_t step = 0; step < 1000; ++step) {
    const double v = lr.lr_at(step);
    EXPECT_GE(v, 1e-3);
    EXPECT_LE(v, 1e-2);
  }
}

TEST(CyclicalLr, AmplitudeDecaysAcrossCycles) {
  // triangular2 behaviour: each cycle's peak is half the previous one.
  CyclicalLr lr(1e-3, 1e-2, 100);
  const double peak0 = lr.lr_at(50);
  const double peak1 = lr.lr_at(150);
  const double peak2 = lr.lr_at(250);
  EXPECT_NEAR(peak1 - 1e-3, (peak0 - 1e-3) / 2.0, 1e-12);
  EXPECT_NEAR(peak2 - 1e-3, (peak0 - 1e-3) / 4.0, 1e-12);
}

TEST(CyclicalLr, AnnealsTowardsBase) {
  CyclicalLr lr(1e-3, 1e-2, 10);
  EXPECT_NEAR(lr.lr_at(10000 + 5), 1e-3, 1e-6);  // amplitude has decayed away
}

TEST(CyclicalLr, MonotoneUpThenDownWithinCycle) {
  CyclicalLr lr(1e-3, 1e-2, 100);
  for (std::size_t s = 0; s < 49; ++s) EXPECT_LT(lr.lr_at(s), lr.lr_at(s + 1));
  for (std::size_t s = 50; s < 99; ++s) EXPECT_GT(lr.lr_at(s), lr.lr_at(s + 1));
}

TEST(CyclicalLr, OddCycleLengthWellDefined) {
  CyclicalLr lr(1e-3, 1e-2, 7);
  for (std::size_t s = 0; s < 50; ++s) {
    const double v = lr.lr_at(s);
    EXPECT_GE(v, 1e-3);
    EXPECT_LE(v, 1e-2);
  }
}

}  // namespace
}  // namespace bellamy::nn
