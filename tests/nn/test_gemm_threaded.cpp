// Threaded-GEMM == serial-GEMM bit-identity.  The threaded driver splits the
// blocked kernel by whole output tiles (column panels, or row groups for
// tall-skinny shapes) with the k-accumulation order unchanged, so its output
// must equal the serial kernel EXACTLY — not just to a tolerance — at any
// thread count, for all three matmul variants, including ragged tile edges
// and from inside a pool worker (nested fan-out).

#include <gtest/gtest.h>

#include <cstddef>
#include <future>

#include "nn/matrix.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

constexpr std::size_t kForceSerial = static_cast<std::size_t>(-1);

// Restores the process-wide GEMM knobs even when an assertion fails.
struct GemmConfigGuard {
  std::size_t saved_flops = Matrix::gemm_min_flops();
  ~GemmConfigGuard() {
    Matrix::set_gemm_min_flops(saved_flops);
    Matrix::set_gemm_pool(nullptr);
  }
};

struct Shapes {
  std::size_t m, n, k;
};

void expect_threaded_matches_serial(parallel::ThreadPool& pool, const Shapes& s,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  const Matrix a = Matrix::randn(s.m, s.k, rng);
  const Matrix b = Matrix::randn(s.k, s.n, rng);
  const Matrix at = a.transposed();
  const Matrix bt = b.transposed();

  GemmConfigGuard guard;
  Matrix::set_gemm_pool(&pool);
  Matrix::set_gemm_min_flops(kForceSerial);
  const Matrix serial = Matrix::matmul(a, b);
  const Matrix serial_tn = Matrix::matmul_tn(at, b);
  const Matrix serial_nt = Matrix::matmul_nt(a, bt);

  Matrix::set_gemm_min_flops(0);  // thread everything, even tiny products
  EXPECT_TRUE(Matrix::matmul(a, b) == serial)
      << "matmul " << s.m << "x" << s.n << "x" << s.k;
  EXPECT_TRUE(Matrix::matmul_tn(at, b) == serial_tn)
      << "matmul_tn " << s.m << "x" << s.n << "x" << s.k;
  EXPECT_TRUE(Matrix::matmul_nt(a, bt) == serial_nt)
      << "matmul_nt " << s.m << "x" << s.n << "x" << s.k;
}

TEST(GemmThreaded, BitIdenticalAcrossShapes) {
  parallel::ThreadPool pool(8);
  // Square multi-panel, ragged tile edges, tall-skinny (row split), wide
  // (column split), single-tile, and sub-tile shapes.
  const Shapes shapes[] = {{256, 256, 256}, {130, 67, 45},  {1000, 8, 16},
                           {8, 1024, 64},   {64, 64, 64},   {3, 5, 2},
                           {65, 129, 64},   {128, 64, 130}};
  std::uint64_t seed = 100;
  for (const auto& s : shapes) expect_threaded_matches_serial(pool, s, seed++);
}

TEST(GemmThreaded, BitIdenticalAtDifferentThreadCounts) {
  util::Rng rng(7);
  const Matrix a = Matrix::randn(192, 160, rng);
  const Matrix b = Matrix::randn(160, 224, rng);

  GemmConfigGuard guard;
  Matrix::set_gemm_min_flops(kForceSerial);
  const Matrix serial = Matrix::matmul(a, b);

  Matrix::set_gemm_min_flops(0);
  for (const std::size_t threads : {2, 3, 5, 8}) {
    parallel::ThreadPool pool(threads);
    Matrix::set_gemm_pool(&pool);
    EXPECT_TRUE(Matrix::matmul(a, b) == serial) << threads << " threads";
  }
}

TEST(GemmThreaded, RandomizedFuzzAgainstSerial) {
  parallel::ThreadPool pool(4);
  util::Rng shape_rng(99);
  GemmConfigGuard guard;
  for (int iter = 0; iter < 20; ++iter) {
    const auto dim = [&](std::size_t lo, std::size_t hi) {
      return lo + static_cast<std::size_t>(shape_rng.uniform(0.0, 1.0) *
                                           static_cast<double>(hi - lo));
    };
    const Shapes s{dim(1, 150), dim(1, 150), dim(1, 150)};
    expect_threaded_matches_serial(pool, s, 1000 + static_cast<std::uint64_t>(iter));
  }
}

// A GEMM issued from inside a worker of the same pool must still complete
// (parallel_for's helping wait) and still be bit-identical.
TEST(GemmThreaded, NestedCallFromPoolWorker) {
  parallel::ThreadPool pool(4);
  util::Rng rng(17);
  const Matrix a = Matrix::randn(150, 150, rng);
  const Matrix b = Matrix::randn(150, 150, rng);

  GemmConfigGuard guard;
  Matrix::set_gemm_pool(&pool);
  Matrix::set_gemm_min_flops(kForceSerial);
  const Matrix serial = Matrix::matmul(a, b);

  Matrix::set_gemm_min_flops(0);
  auto fut = pool.submit([&] { return Matrix::matmul(a, b); });
  EXPECT_TRUE(fut.get() == serial);
}

TEST(GemmThreaded, EmptyDimensionsStaySafe) {
  parallel::ThreadPool pool(4);
  GemmConfigGuard guard;
  Matrix::set_gemm_pool(&pool);
  Matrix::set_gemm_min_flops(0);
  const Matrix empty_a(0, 5);
  const Matrix b(5, 3, 1.0);
  const Matrix out = Matrix::matmul(empty_a, b);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 3u);
}

}  // namespace
}  // namespace bellamy::nn
