#include "nn/dropout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nn/activations.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

TEST(AlphaDropout, RejectsInvalidRate) {
  EXPECT_THROW(AlphaDropout(-0.1, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(AlphaDropout(1.0, util::Rng(1)), std::invalid_argument);
  EXPECT_NO_THROW(AlphaDropout(0.0, util::Rng(1)));
}

TEST(AlphaDropout, EvalModeIsIdentity) {
  AlphaDropout drop(0.5, util::Rng(2));
  drop.set_training(false);
  const Matrix x = Matrix{{1.0, -2.0, 3.0}};
  EXPECT_EQ(drop.forward(x), x);
  EXPECT_EQ(drop.backward(x), x);
}

TEST(AlphaDropout, ZeroRateIsIdentityEvenInTraining) {
  AlphaDropout drop(0.0, util::Rng(3));
  drop.set_training(true);
  const Matrix x = Matrix{{0.5, -0.5}};
  EXPECT_EQ(drop.forward(x), x);
}

TEST(AlphaDropout, TrainingModifiesSomeEntries) {
  AlphaDropout drop(0.5, util::Rng(4));
  drop.set_training(true);
  const Matrix x(10, 10, 1.0);
  const Matrix y = drop.forward(x);
  int changed = 0;
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      if (y(r, c) != 1.0) ++changed;
    }
  }
  EXPECT_GT(changed, 0);
}

TEST(AlphaDropout, DroppedEntriesTakeSaturationValue) {
  AlphaDropout drop(0.5, util::Rng(5));
  drop.set_training(true);
  const Matrix x(20, 20, 0.0);
  const Matrix y = drop.forward(x);
  // With input 0: kept -> a*0 + b = b, dropped -> a*alpha' + b.
  // There must be exactly two distinct output values.
  std::set<double> values;
  for (std::size_t i = 0; i < y.size(); ++i) values.insert(y.data()[i]);
  EXPECT_EQ(values.size(), 2u);
}

TEST(AlphaDropout, PreservesMeanAndVarianceApproximately) {
  // The affine correction must keep N(0,1) inputs at ~zero mean/unit var.
  AlphaDropout drop(0.1, util::Rng(6));
  drop.set_training(true);
  util::Rng rng(7);
  const Matrix x = Matrix::randn(300, 300, rng);
  const Matrix y = drop.forward(x);
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    sum += y.data()[i];
    sq += y.data()[i] * y.data()[i];
  }
  const double n = static_cast<double>(y.size());
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(AlphaDropout, BackwardMasksGradient) {
  AlphaDropout drop(0.5, util::Rng(8));
  drop.set_training(true);
  const Matrix x(5, 5, 1.0);
  const Matrix y = drop.forward(x);
  const Matrix grad = drop.backward(Matrix::ones(5, 5));
  // Gradient is a * mask: zero exactly where dropped, constant a where kept.
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      const bool kept = y(r, c) != y(0, 0) || true;  // can't infer per-cell here
      (void)kept;
      EXPECT_TRUE(grad(r, c) == 0.0 || grad(r, c) > 0.0);
    }
  }
  // At least one zero and one non-zero with rate 0.5 on 25 entries (w.h.p.).
  int zeros = 0;
  int nonzeros = 0;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (grad.data()[i] == 0.0) ++zeros; else ++nonzeros;
  }
  EXPECT_GT(zeros, 0);
  EXPECT_GT(nonzeros, 0);
}

TEST(AlphaDropout, BackwardAfterEvalForwardIsIdentity) {
  AlphaDropout drop(0.3, util::Rng(9));
  drop.set_training(false);
  drop.forward(Matrix(2, 2, 1.0));
  const Matrix g{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(drop.backward(g), g);
}

TEST(AlphaDropout, SetRateRecomputesAffine) {
  AlphaDropout drop(0.2, util::Rng(10));
  drop.set_rate(0.0);
  drop.set_training(true);
  const Matrix x{{1.0, 2.0}};
  EXPECT_EQ(drop.forward(x), x);
  EXPECT_THROW(drop.set_rate(1.5), std::invalid_argument);
}

TEST(AlphaDropout, DropFractionMatchesRate) {
  AlphaDropout drop(0.25, util::Rng(11));
  drop.set_training(true);
  const Matrix x(100, 100, 1.0);
  drop.forward(x);
  const Matrix grad = drop.backward(Matrix::ones(100, 100));
  int zeros = 0;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (grad.data()[i] == 0.0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace bellamy::nn
