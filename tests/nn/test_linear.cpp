#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "util/rng.hpp"

namespace bellamy::nn {
namespace {

TEST(Linear, ForwardShape) {
  util::Rng rng(1);
  Linear layer(3, 5, true, Init::kHeNormal, rng);
  const Matrix x(7, 3, 0.5);
  const Matrix y = layer.forward(x);
  EXPECT_EQ(y.rows(), 7u);
  EXPECT_EQ(y.cols(), 5u);
}

TEST(Linear, ForwardComputesAffineMap) {
  util::Rng rng(2);
  Linear layer(2, 1, true, Init::kZeros, rng);
  layer.weight().value = Matrix{{2.0, 3.0}};
  layer.bias().value = Matrix{{0.5}};
  const Matrix x{{1.0, 1.0}, {2.0, -1.0}};
  const Matrix y = layer.forward(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 5.5);   // 2 + 3 + 0.5
  EXPECT_DOUBLE_EQ(y(1, 0), 1.5);   // 4 - 3 + 0.5
}

TEST(Linear, NoBiasOmitsOffset) {
  util::Rng rng(3);
  Linear layer(2, 1, false, Init::kZeros, rng);
  layer.weight().value = Matrix{{1.0, 1.0}};
  const Matrix y = layer.forward(Matrix{{2.0, 3.0}});
  EXPECT_DOUBLE_EQ(y(0, 0), 5.0);
  EXPECT_THROW(layer.bias(), std::logic_error);
}

TEST(Linear, WrongInputWidthThrows) {
  util::Rng rng(4);
  Linear layer(3, 2, true, Init::kHeNormal, rng);
  EXPECT_THROW(layer.forward(Matrix(1, 4)), std::invalid_argument);
}

TEST(Linear, ParametersExposed) {
  util::Rng rng(5);
  Linear biased(3, 2, true, Init::kHeNormal, rng, "lin");
  EXPECT_EQ(biased.parameters().size(), 2u);
  EXPECT_EQ(biased.parameters()[0]->name, "lin.weight");
  EXPECT_EQ(biased.parameters()[1]->name, "lin.bias");
  Linear unbiased(3, 2, false, Init::kHeNormal, rng);
  EXPECT_EQ(unbiased.parameters().size(), 1u);
}

TEST(Linear, NumParameters) {
  util::Rng rng(6);
  Linear layer(3, 2, true, Init::kHeNormal, rng);
  EXPECT_EQ(layer.num_parameters(), 3u * 2u + 2u);
}

TEST(Linear, GradCheckWithBias) {
  util::Rng rng(7);
  Linear layer(4, 3, true, Init::kHeNormal, rng);
  const Matrix x = Matrix::randn(5, 4, rng);
  const auto result = grad_check(layer, x);
  EXPECT_LT(result.max_input_grad_error, 1e-6);
  EXPECT_LT(result.max_param_grad_error, 1e-6);
}

TEST(Linear, GradCheckNoBias) {
  util::Rng rng(8);
  Linear layer(3, 6, false, Init::kLeCunNormal, rng);
  const Matrix x = Matrix::randn(2, 3, rng);
  const auto result = grad_check(layer, x);
  EXPECT_TRUE(result.ok(1e-6)) << "input err " << result.max_input_grad_error << " param err "
                               << result.max_param_grad_error;
}

TEST(Linear, BackwardAccumulatesGradients) {
  util::Rng rng(9);
  Linear layer(2, 2, true, Init::kHeNormal, rng);
  const Matrix x = Matrix::randn(3, 2, rng);
  const Matrix y = layer.forward(x);
  layer.backward(Matrix::ones(3, 2));
  const Matrix first = layer.weight().grad;
  layer.forward(x);
  layer.backward(Matrix::ones(3, 2));
  EXPECT_LT(Matrix::max_abs_diff(layer.weight().grad, first * 2.0), 1e-12);
  (void)y;
}

TEST(Linear, ZeroGradClears) {
  util::Rng rng(10);
  Linear layer(2, 2, true, Init::kHeNormal, rng);
  layer.forward(Matrix::randn(1, 2, rng));
  layer.backward(Matrix::ones(1, 2));
  layer.zero_grad();
  EXPECT_DOUBLE_EQ(layer.weight().grad.squared_norm(), 0.0);
}

TEST(Linear, BackwardShapeMismatchThrows) {
  util::Rng rng(11);
  Linear layer(2, 3, true, Init::kHeNormal, rng);
  layer.forward(Matrix(4, 2));
  EXPECT_THROW(layer.backward(Matrix(4, 2)), std::invalid_argument);
  EXPECT_THROW(layer.backward(Matrix(3, 3)), std::invalid_argument);
}

TEST(Linear, ReinitializeChangesWeightsZeroesBias) {
  util::Rng rng(12);
  Linear layer(4, 4, true, Init::kHeNormal, rng);
  layer.bias().value.fill(7.0);
  const Matrix before = layer.weight().value;
  layer.reinitialize(Init::kHeNormal, rng);
  EXPECT_GT(Matrix::max_abs_diff(before, layer.weight().value), 1e-9);
  EXPECT_DOUBLE_EQ(layer.bias().value.squared_norm(), 0.0);
}

TEST(Linear, TrainableFlagToggles) {
  util::Rng rng(13);
  Linear layer(2, 2, true, Init::kHeNormal, rng);
  layer.set_trainable(false);
  for (auto* p : layer.parameters()) EXPECT_FALSE(p->trainable);
  layer.set_trainable(true);
  for (auto* p : layer.parameters()) EXPECT_TRUE(p->trainable);
}

TEST(Linear, Describe) {
  util::Rng rng(14);
  EXPECT_EQ(Linear(3, 2, true, Init::kHeNormal, rng).describe(), "Linear(3 -> 2, bias)");
  EXPECT_EQ(Linear(3, 2, false, Init::kHeNormal, rng).describe(), "Linear(3 -> 2, no bias)");
}

}  // namespace
}  // namespace bellamy::nn
