// Chaos soak: the fault-injection harness driving the whole stack.
//
//   * MESH SOAK — a 3-node exchange mesh where every peer link runs through
//     a ChaosTransport fed by one seeded FaultInjector, plus random peer
//     flaps (hard outages).  Across >= 5 fault schedules the mesh must
//     converge BIT-IDENTICALLY once the network heals, with zero hung
//     threads (the test finishing IS the proof — every sync_now() returns).
//   * SOCKET SOAK — a real ServeServer whose accepted sockets degrade
//     through the injector (delays, dropped writes, truncated frames, hard
//     disconnects) against deadline-carrying clients.  Every request must
//     resolve exactly once — ok with the right bits or a typed failure,
//     never junk, never a hang — and after healing a clean client reads
//     bit-identical predictions.
//
// Garble runs at BOTH layers: every wire frame now carries a trailing
// FNV-1a checksum, so a garbled frame can no longer decode into a valid
// different request — the receiver rejects it as kChecksumMismatch and
// closes the connection, which the client surfaces as the typed kShutdown.
// Flipped bytes on a real socket are therefore just another transport
// fault, and the bit-exactness assertions below stay sound.
//
// Determinism: one FaultPlan seed = one fault schedule.  A failing seed
// replays locally by pasting it into kSchedules.
//
// Runs under ASan/UBSan in CI (label "chaos").

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "exchange/exchange.hpp"
#include "net/net.hpp"
#include "serve/serve.hpp"

namespace bellamy {
namespace {

using std::chrono::milliseconds;

/// splitmix64: the same deterministic generator the injector uses, here
/// driving the flap schedule so the whole soak replays from its seed.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct SoakFixture {
  SoakFixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 61;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
    core::PreTrainConfig pre;
    pre.epochs = 60;
    for (std::uint64_t seed : {11ull, 23ull, 37ull}) {
      core::BellamyModel model(core::BellamyConfig{}, seed);
      core::pretrain(model, ds.runs(), pre);
      models.push_back(std::move(model));
    }
  }

  data::Dataset ds;
  std::vector<core::BellamyModel> models;  ///< one distinct model per node
};

/// checkpoint_text without gtest side effects: empty = not there (yet).
std::string text_or_empty(serve::ModelRegistry& registry, const serve::ModelKey& key) {
  const auto handle = registry.find(key);
  if (!handle.ok()) return {};
  const auto text = registry.checkpoint_text(handle.value());
  return text.ok() ? text.value() : std::string();
}

TEST(ChaosSoak, MeshWithFlappingPeersConvergesBitIdenticallyOnceHealed) {
  SoakFixture f;

  // >= 5 fault schedules, per the acceptance bar.
  const std::uint64_t kSchedules[] = {101, 202, 303, 404, 505};
  for (const std::uint64_t schedule : kSchedules) {
    SCOPED_TRACE("fault schedule seed " + std::to_string(schedule));

    net::FaultPlan plan;
    plan.seed = schedule;
    plan.delay_prob = 0.10;
    plan.drop_prob = 0.10;
    plan.garble_prob = 0.10;
    plan.disconnect_prob = 0.15;
    plan.max_delay = milliseconds(5);
    auto faults = std::make_shared<net::FaultInjector>(plan);

    exchange::ExchangeOptions options;
    options.advertise_on_update = false;  // convergence comes from sync rounds
    options.breaker.failure_threshold = 2;
    options.breaker.cooldown = milliseconds(50);

    constexpr int kNodes = 3;
    struct MeshNode {
      explicit MeshNode(const exchange::ExchangeOptions& opts) : ex(registry, opts) {}
      serve::ModelRegistry registry;
      exchange::ExchangeRegistry ex;
    };
    std::vector<std::unique_ptr<MeshNode>> nodes;
    for (int i = 0; i < kNodes; ++i) nodes.push_back(std::make_unique<MeshNode>(options));

    // Full mesh: every directed edge is a chaos-wrapped local transport.
    std::vector<std::shared_ptr<exchange::ChaosTransport>> edges;
    for (int from = 0; from < kNodes; ++from) {
      for (int to = 0; to < kNodes; ++to) {
        if (from == to) continue;
        auto edge = std::make_shared<exchange::ChaosTransport>(
            std::make_shared<exchange::LocalTransport>(
                nodes[static_cast<std::size_t>(to)]->ex,
                "node" + std::to_string(to)),
            faults);
        nodes[static_cast<std::size_t>(from)]->ex.add_peer(edge);
        edges.push_back(std::move(edge));
      }
    }

    // Each node contributes one model; the mesh must spread all three.
    std::vector<serve::ModelKey> keys;
    std::vector<std::string> expected;
    for (int i = 0; i < kNodes; ++i) {
      const serve::ModelKey key{"sgd", "soak-" + std::to_string(i)};
      ASSERT_TRUE(nodes[static_cast<std::size_t>(i)]
                      ->ex.publish(key, f.models[static_cast<std::size_t>(i)])
                      .ok());
      keys.push_back(key);
      expected.push_back(
          text_or_empty(nodes[static_cast<std::size_t>(i)]->registry, key));
      ASSERT_FALSE(expected.back().empty());
    }

    // The storm: sync rounds under injected faults while peers flap.
    std::uint64_t flap_rng = schedule * 7919;
    for (int round = 0; round < 8; ++round) {
      const std::size_t victim = mix(flap_rng) % edges.size();
      edges[victim]->set_down((mix(flap_rng) & 1) != 0);
      for (auto& node : nodes) node->ex.sync_now();
    }
    EXPECT_GT(faults->counts().total(), 0u) << "the storm never injected anything";

    // Heal: outages end, the injector goes quiet, breakers get to re-probe.
    for (auto& edge : edges) edge->set_down(false);
    faults->set_enabled(false);

    bool converged = false;
    for (int round = 0; round < 100 && !converged; ++round) {
      std::this_thread::sleep_for(milliseconds(60));  // let cooldowns elapse
      for (auto& node : nodes) node->ex.sync_now();
      converged = true;
      for (int i = 0; i < kNodes && converged; ++i) {
        for (std::size_t k = 0; k < keys.size() && converged; ++k) {
          converged = text_or_empty(nodes[static_cast<std::size_t>(i)]->registry,
                                    keys[k]) == expected[k];
        }
      }
    }
    EXPECT_TRUE(converged) << "mesh did not converge bit-identically after healing";

    for (auto& node : nodes) node->ex.stop();
  }
}

TEST(ChaosSoak, SocketFaultsEveryRequestResolvesExactlyOnceAndHealsClean) {
  SoakFixture f;
  core::BellamyModel& model = f.models.front();

  net::FaultPlan plan;
  plan.seed = 909;
  plan.delay_prob = 0.05;
  plan.drop_prob = 0.05;
  plan.truncate_prob = 0.03;
  plan.garble_prob = 0.03;  // flipped bytes on the socket: caught by the frame checksum
  plan.disconnect_prob = 0.05;
  plan.max_delay = milliseconds(5);
  auto faults = std::make_shared<net::FaultInjector>(plan);

  serve::ModelRegistry registry;
  serve::ServeOptions serve_options;
  serve_options.workers = 2;
  serve::PredictionService service(registry, serve_options);

  net::ServerOptions server_options;
  server_options.deadlines.read = milliseconds(500);
  server_options.deadlines.write = milliseconds(500);
  server_options.fault_injector = faults;
  net::ServeServer server(registry, service, server_options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  const serve::ModelKey key{"sgd", "chaos"};
  ASSERT_TRUE(registry.publish(key, model).ok());

  auto query = [&](int scale_out) {
    data::JobRun q = f.ds.runs().front();
    q.scale_out = scale_out;
    return q;
  };
  std::vector<double> want(31, 0.0);
  for (int x = 1; x <= 30; ++x) want[static_cast<std::size_t>(x)] = model.predict_one(query(x));

  net::ClientOptions client_options;
  client_options.deadlines.connect = milliseconds(2000);
  client_options.deadlines.request = milliseconds(500);

  constexpr int kClients = 3;
  constexpr int kRequests = 60;
  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> junk{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = std::make_unique<net::NetClient>(client_options);
      std::string dial_error;
      bool connected = client->connect("127.0.0.1", server.port(), dial_error);
      for (int i = 0; i < kRequests; ++i) {
        const int x = 1 + i % 30;
        if (!connected) {  // the last fault killed the stream: redial
          client = std::make_unique<net::NetClient>(client_options);
          connected = client->connect("127.0.0.1", server.port(), dial_error);
          if (!connected) continue;
        }
        const auto r = client->predict(key, query(x));
        resolved.fetch_add(1);  // predict() RETURNED: resolved exactly once
        if (r.ok()) {
          if (r.value() != want[static_cast<std::size_t>(x)]) junk.fetch_add(1);
        } else if (r.status() != serve::ServeStatus::kShutdown &&
                   r.status() != serve::ServeStatus::kTimeout) {
          junk.fetch_add(1);  // only transport-shaped failures are legal
        }
        if (!r.ok()) connected = false;
      }
      client->close();
    });
  }
  for (std::thread& t : threads) t.join();

  // Every request that went out came back exactly once, and nothing came
  // back as a wrong value or an untyped error.
  EXPECT_GT(resolved.load(), 0u);
  EXPECT_EQ(junk.load(), 0u);
  EXPECT_GT(faults->counts().total(), 0u) << "the soak never injected anything";

  // Healed: a clean client reads the exact model bits the chaos never touched.
  faults->set_enabled(false);
  net::NetClient clean(client_options);
  ASSERT_TRUE(clean.connect("127.0.0.1", server.port(), error)) << error;
  for (int x = 1; x <= 30; ++x) {
    const auto r = clean.predict(key, query(x));
    ASSERT_TRUE(r.ok()) << "x=" << x << ": " << r.error_text();
    EXPECT_EQ(r.value(), want[static_cast<std::size_t>(x)]) << "x=" << x;
  }

  // The serve layer answered everything it was handed.
  const auto metrics = clean.metrics(key);
  ASSERT_TRUE(metrics.ok()) << metrics.error_text();
  EXPECT_EQ(metrics.value().requests, metrics.value().responses);

  clean.close();
  server.stop();
}

}  // namespace
}  // namespace bellamy
