// Circuit-breaker recovery at the exchange layer: a peer dies, its circuit
// trips open, sync rounds stop touching it entirely (no wire traffic, no
// timeout tax), a failed half-open probe re-opens it, and after the peer
// revives EXACTLY ONE successful probe re-admits it — at which point pulls
// flow again and the mesh converges.  Plus the typed-timeout contract of
// open() against a peer that accepts and never answers.
//
// Runs under ASan/UBSan in CI (label "exchange").

#include "exchange/exchange.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "net/socket.hpp"

namespace bellamy::exchange {
namespace {

using std::chrono::milliseconds;

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 61;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
  }

  core::BellamyModel pretrained(std::uint64_t seed) const {
    core::BellamyModel model(core::BellamyConfig{}, seed);
    core::PreTrainConfig pre;
    pre.epochs = 60;
    core::pretrain(model, ds.runs(), pre);
    return model;
  }

  data::Dataset ds;
};

struct Node {
  explicit Node(ExchangeOptions options = {}) : ex(registry, options) {}
  serve::ModelRegistry registry;
  ExchangeRegistry ex;
};

std::string text_of(Node& n, const serve::ModelKey& key) {
  const auto handle = n.registry.find(key);
  EXPECT_TRUE(handle.ok()) << key.str() << ": " << handle.error_text();
  if (!handle.ok()) return {};
  const auto text = n.registry.checkpoint_text(handle.value());
  return text.ok() ? text.value() : std::string();
}

/// LocalTransport with a kill switch and a call odometer: proves sync
/// rounds stop REACHING a peer whose circuit is open.
class FlappyTransport final : public PeerTransport {
 public:
  explicit FlappyTransport(net::PeerService& target) : inner_(target, "flappy") {}

  serve::ServeResult<std::vector<DigestEntry>> digest() override {
    calls.fetch_add(1);
    if (down.load()) {
      return serve::ServeResult<std::vector<DigestEntry>>::failure(
          serve::ServeStatus::kShutdown, "peer flappy unreachable: down");
    }
    return inner_.digest();
  }

  serve::ServeResult<PulledCheckpoint> pull(const serve::ModelKey& key) override {
    calls.fetch_add(1);
    if (down.load()) {
      return serve::ServeResult<PulledCheckpoint>::failure(
          serve::ServeStatus::kShutdown, "peer flappy unreachable: down");
    }
    return inner_.pull(key);
  }

  serve::ServeResult<serve::Unit> advertise(
      const std::vector<DigestEntry>& entries) override {
    calls.fetch_add(1);
    if (down.load()) {
      return serve::ServeResult<serve::Unit>::failure(
          serve::ServeStatus::kShutdown, "peer flappy unreachable: down");
    }
    return inner_.advertise(entries);
  }

  std::string name() const override { return "flappy"; }

  std::atomic<int> calls{0};
  std::atomic<bool> down{false};

 private:
  LocalTransport inner_;
};

TEST(CircuitBreakerRecovery, DeadPeerIsSkippedAndOneProbeReadmitsIt) {
  Fixture f;

  ExchangeOptions options;
  options.advertise_on_update = false;  // all traffic comes from explicit syncs
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown = milliseconds(150);

  Node a(options);
  Node b;
  auto flappy = std::make_shared<FlappyTransport>(b.ex);
  a.ex.add_peer(flappy);

  const serve::ModelKey early{"sgd", "early"};
  ASSERT_TRUE(b.ex.publish(early, f.pretrained(11)).ok());

  // Healthy round: digest + pull = 2 calls, model lands bit-identically.
  a.ex.sync_now();
  EXPECT_EQ(flappy->calls.load(), 2);
  EXPECT_EQ(text_of(a, early), text_of(b, early));
  {
    const auto stats = a.ex.stats();
    ASSERT_EQ(stats.peers.size(), 1u);
    EXPECT_STREQ(stats.peers[0].breaker_state, "closed");
    EXPECT_EQ(stats.peers[0].successes, 2u);
  }

  // Peer dies: two consecutive failures trip the breaker.
  flappy->down.store(true);
  a.ex.sync_now();
  a.ex.sync_now();
  EXPECT_EQ(flappy->calls.load(), 4);
  {
    const auto stats = a.ex.stats();
    EXPECT_STREQ(stats.peers[0].breaker_state, "open");
    EXPECT_EQ(stats.peers[0].failures, 2u);
    EXPECT_EQ(stats.peers[0].trips, 1u);
  }

  // Open circuit: further rounds never touch the transport.
  a.ex.sync_now();
  a.ex.sync_now();
  EXPECT_EQ(flappy->calls.load(), 4) << "open circuit still produced wire traffic";
  {
    const auto stats = a.ex.stats();
    EXPECT_EQ(stats.peers[0].skips, 2u);
    EXPECT_EQ(stats.breaker_skips, 2u);
  }

  // Cooldown elapses but the peer is STILL dead: the single probe fails and
  // the circuit re-opens with a fresh cooldown.
  std::this_thread::sleep_for(milliseconds(250));
  a.ex.sync_now();
  EXPECT_EQ(flappy->calls.load(), 5);  // exactly the probe
  {
    const auto stats = a.ex.stats();
    EXPECT_STREQ(stats.peers[0].breaker_state, "open");
    EXPECT_EQ(stats.peers[0].failures, 3u);
    EXPECT_EQ(stats.peers[0].trips, 2u);
    EXPECT_EQ(stats.peers[0].probes, 1u);
  }
  a.ex.sync_now();  // fresh cooldown: skipped again
  EXPECT_EQ(flappy->calls.load(), 5);

  // Peer revives with something new to offer.
  const serve::ModelKey late{"sgd", "late"};
  ASSERT_TRUE(b.ex.publish(late, f.pretrained(23)).ok());
  flappy->down.store(false);
  std::this_thread::sleep_for(milliseconds(250));

  // One successful probe closes the circuit and the round completes in
  // full: digest (the probe) + pull of the new key.
  a.ex.sync_now();
  {
    const auto stats = a.ex.stats();
    EXPECT_STREQ(stats.peers[0].breaker_state, "closed");
    EXPECT_EQ(stats.peers[0].probes, 2u);
    EXPECT_EQ(stats.peers[0].failures, 3u);  // no new failures
  }
  EXPECT_EQ(text_of(a, late), text_of(b, late));
  EXPECT_FALSE(text_of(a, late).empty());

  a.ex.stop();
  b.ex.stop();
}

TEST(CircuitBreakerRecovery, OpenReturnsTypedTimeoutAgainstASilentPeer) {
  // A raw listener that accepts and never speaks the protocol: the worst
  // kind of peer — alive at the TCP level, dead above it.
  std::string error;
  std::uint16_t port = 0;
  net::Socket listener = net::tcp_listen(0, port, error);
  ASSERT_TRUE(listener) << error;
  std::vector<net::Socket> parked;
  std::thread acceptor([&] {
    while (true) {
      net::Socket accepted = net::tcp_accept(listener);
      if (!accepted) break;
      parked.push_back(std::move(accepted));
    }
  });

  ExchangeOptions options;
  options.advertise_on_update = false;
  Node a(options);

  TransportOptions transport_options;
  transport_options.deadlines.connect = milliseconds(2000);
  transport_options.deadlines.request = milliseconds(500);
  transport_options.retry.max_attempts = 1;  // single-shot: measure ONE deadline
  a.ex.add_peer(std::make_shared<TcpTransport>("127.0.0.1", port, transport_options));

  const auto t0 = std::chrono::steady_clock::now();
  const auto opened = a.ex.open({"sgd", "nowhere"});
  const auto elapsed = std::chrono::duration_cast<milliseconds>(
      std::chrono::steady_clock::now() - t0);

  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status(), serve::ServeStatus::kTimeout) << opened.message();
  EXPECT_LT(elapsed.count(), 1000) << "2x the 500ms budget";

  a.ex.stop();
  listener.shutdown_both();
  acceptor.join();
}

}  // namespace
}  // namespace bellamy::exchange
