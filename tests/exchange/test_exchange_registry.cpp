// Exchange-layer tests on LocalTransport meshes: deterministic, in-process,
// no sockets.  The invariants:
//
//   * pull-on-miss installs the peer's model BIT-IDENTICALLY (state stamp is
//     a content hash over every parameter; checkpoint text compares exactly),
//   * a same-job / other-context miss warm-starts via derive() from the
//     pulled base — indistinguishable from a local derive(),
//   * a 3-node mesh converges under concurrent publishes and refits,
//   * highest stamp wins, EXCEPT an entry the node refit locally (pinned),
//   * open_or_pretrain pretrains exactly once per mesh — every other node
//     warm-starts off the seeding node.

#include "exchange/exchange.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"

namespace bellamy::exchange {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 61;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
    target_runs = ds.contexts().front().runs;
  }

  core::BellamyModel pretrained(std::uint64_t seed) const {
    core::BellamyModel model(core::BellamyConfig{}, seed);
    core::PreTrainConfig pre;
    pre.epochs = 60;
    core::pretrain(model, ds.runs(), pre);
    return model;
  }

  data::Dataset ds;
  std::vector<data::JobRun> target_runs;
};

core::FineTuneConfig quick_finetune() {
  core::FineTuneConfig cfg;
  cfg.max_epochs = 80;
  cfg.patience = 40;
  return cfg;
}

/// One mesh node: a registry plus its exchange wrapper.
struct Node {
  explicit Node(ExchangeOptions options = {}) : ex(registry, options) {}
  serve::ModelRegistry registry;
  ExchangeRegistry ex;
};

/// Options with the advertise fast path off: propagation happens only on
/// explicit sync_now() calls, so stat counters are exact.
ExchangeOptions quiet() {
  ExchangeOptions options;
  options.advertise_on_update = false;
  return options;
}

/// Bidirectional LocalTransport link.
void link(Node& a, Node& b) {
  a.ex.add_peer(std::make_shared<LocalTransport>(b.ex, "peer"));
  b.ex.add_peer(std::make_shared<LocalTransport>(a.ex, "peer"));
}

std::string text_of(Node& n, const serve::ModelKey& key) {
  const auto handle = n.registry.find(key);
  EXPECT_TRUE(handle.ok()) << key.str() << ": " << handle.error_text();
  if (!handle.ok()) return {};
  const auto text = n.registry.checkpoint_text(handle.value());
  EXPECT_TRUE(text.ok()) << key.str() << ": " << text.error_text();
  return text.ok() ? text.value() : std::string();
}

std::uint64_t stamp_of_model(Node& n, const serve::ModelKey& key) {
  const auto handle = n.registry.find(key);
  return handle.ok() ? n.registry.state_stamp(handle.value()) : 0;
}

TEST(Exchange, PullOnMissServesThePeersExactModel) {
  Fixture fx;
  Node a(quiet()), b(quiet());
  link(a, b);
  const serve::ModelKey key{"sgd", "ctx-a"};
  ASSERT_TRUE(a.ex.publish(key, fx.pretrained(3)).ok());

  // b has never seen the key: open() must pull it off a.
  const auto opened = b.ex.open(key);
  ASSERT_TRUE(opened.ok()) << opened.error_text();
  EXPECT_TRUE(b.registry.fitted(opened.value()));

  // Bit-identical: identical content hash AND identical checkpoint text.
  EXPECT_EQ(stamp_of_model(b, key), stamp_of_model(a, key));
  EXPECT_EQ(text_of(b, key), text_of(a, key));
  // Same freshness stamp on both catalogs — b took a's version verbatim.
  EXPECT_EQ(b.ex.stamp_of(key), a.ex.stamp_of(key));

  const ExchangeStats bs = b.ex.stats();
  EXPECT_EQ(bs.pulls_completed, 1u);
  EXPECT_EQ(bs.warm_starts, 0u);  // exact key: no derive needed
  EXPECT_EQ(a.ex.stats().pulls_served, 1u);

  // A second open is a plain local hit — no more pulls.
  ASSERT_TRUE(b.ex.open(key).ok());
  EXPECT_EQ(b.ex.stats().pulls_completed, 1u);
}

TEST(Exchange, SameJobMissWarmStartsBitIdenticalToLocalDerive) {
  Fixture fx;
  const core::BellamyModel base = fx.pretrained(5);
  const serve::ModelKey base_key{"sgd", "ctx-a"};
  const serve::ModelKey want_key{"sgd", "ctx-b"};

  Node a(quiet()), b(quiet());
  link(a, b);
  ASSERT_TRUE(a.ex.publish(base_key, base).ok());

  // b asks for a context NOBODY has, but a has the same job: warm start.
  const auto opened = b.ex.open(want_key);
  ASSERT_TRUE(opened.ok()) << opened.error_text();
  EXPECT_EQ(b.ex.stats().warm_starts, 1u);

  // The reference: the same warm start done entirely locally.
  serve::ModelRegistry local;
  const auto local_base = local.publish(base_key, base);
  const auto local_derived = local.derive(local_base.value(), want_key);
  ASSERT_TRUE(local_derived.ok());

  EXPECT_EQ(b.registry.state_stamp(opened.value()),
            local.state_stamp(local_derived.value()));
  EXPECT_EQ(text_of(b, want_key), text_of(a, base_key));  // direct reuse of the base

  // The derived entry shares the PULLED base checkpoint, like a local derive.
  const auto b_base = b.registry.find(base_key);
  ASSERT_TRUE(b_base.ok());
  EXPECT_EQ(b.registry.base_checkpoint(opened.value()),
            b.registry.base_checkpoint(b_base.value()));
  // And the derived key is a fresh LOCAL version, advertised to the mesh.
  EXPECT_GT(b.ex.stamp_of(want_key), 0u);
  EXPECT_FALSE(b.ex.pinned(want_key));
}

TEST(Exchange, RefitsPropagateAndPinnedEntriesResistClobber) {
  Fixture fx;
  Node a(quiet()), b(quiet());
  link(a, b);
  const serve::ModelKey key{"sgd", "shared"};
  ASSERT_TRUE(a.ex.publish(key, fx.pretrained(7)).ok());
  ASSERT_TRUE(b.ex.open(key).ok());  // pull

  // b refits on its own runs: pinned at b, fresh stamp, new weights.
  const auto b_handle = b.registry.find(key).value();
  const auto refit =
      b.ex.refit_async(b_handle, fx.target_runs, quick_finetune()).get();
  ASSERT_TRUE(refit.ok()) << refit.error_text();
  EXPECT_TRUE(b.ex.pinned(key));
  EXPECT_GT(b.ex.stamp_of(key), a.ex.stamp_of(key));

  // a syncs: not pinned there, b's stamp is newer -> a pulls the refit.
  a.ex.sync_now();
  EXPECT_EQ(stamp_of_model(a, key), stamp_of_model(b, key));
  EXPECT_EQ(a.ex.stamp_of(key), b.ex.stamp_of(key));

  // a then REPUBLISHES (its clock has seen b's stamp, so this outranks it).
  ASSERT_TRUE(a.ex.publish(key, fx.pretrained(8)).ok());
  ASSERT_GT(a.ex.stamp_of(key), b.ex.stamp_of(key));
  const std::uint64_t b_weights_before = stamp_of_model(b, key);

  // b syncs: the remote version is NEWER, but b's entry is pinned — the
  // refit b paid for is never clobbered by gossip.
  const std::uint64_t skipped_before = b.ex.stats().conflicts_skipped;
  b.ex.sync_now();
  EXPECT_EQ(stamp_of_model(b, key), b_weights_before);
  EXPECT_TRUE(b.ex.pinned(key));
  EXPECT_GT(b.ex.stats().conflicts_skipped, skipped_before);

  // A republish at b CLEARS the pin (the refit weights were replaced
  // wholesale), so gossip may overwrite again afterwards.
  ASSERT_TRUE(b.ex.publish(key, fx.pretrained(9)).ok());
  EXPECT_FALSE(b.ex.pinned(key));
}

TEST(Exchange, ThreeNodeMeshConvergesUnderConcurrentPublishesAndRefits) {
  Fixture fx;
  // Gossip off: convergence must come from the anti-entropy rounds alone
  // (the advertise fast path is separately tested below).
  Node a(quiet()), b(quiet()), c(quiet());
  link(a, b);
  link(b, c);
  link(a, c);
  Node* nodes[] = {&a, &b, &c};

  const core::BellamyModel model = fx.pretrained(11);
  std::vector<serve::ModelKey> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(serve::ModelKey{"sgd", "ctx-" + std::to_string(i)});
  }

  // Concurrent publishes: node i%3 owns key i; all publish at once.
  std::vector<std::thread> writers;
  for (int i = 0; i < 6; ++i) {
    writers.emplace_back([&, i] {
      ASSERT_TRUE(nodes[i % 3]->ex.publish(keys[static_cast<std::size_t>(i)], model).ok());
    });
  }
  for (std::thread& t : writers) t.join();

  // Two concurrent refits on the owners' own entries.
  auto fa = a.ex.refit_async(a.registry.find(keys[0]).value(), fx.target_runs,
                             quick_finetune());
  auto fb = b.ex.refit_async(b.registry.find(keys[1]).value(), fx.target_runs,
                             quick_finetune());
  ASSERT_TRUE(fa.get().ok());
  ASSERT_TRUE(fb.get().ok());

  // Full-mesh digest rounds: every node pulls directly from every owner.
  for (Node* n : nodes) n->ex.sync_now();

  for (const serve::ModelKey& key : keys) {
    const std::uint64_t want_stamp = stamp_of_model(a, key);
    ASSERT_GT(want_stamp, 0u) << key.str();
    for (Node* n : nodes) {
      const auto handle = n->registry.find(key);
      ASSERT_TRUE(handle.ok()) << key.str();
      EXPECT_TRUE(n->registry.fitted(handle.value()));
      EXPECT_EQ(stamp_of_model(*n, key), want_stamp) << key.str();
      EXPECT_EQ(n->ex.stamp_of(key), a.ex.stamp_of(key)) << key.str();
    }
  }
  // The refit owners stay pinned; everyone else converged onto their weights.
  EXPECT_TRUE(a.ex.pinned(keys[0]));
  EXPECT_TRUE(b.ex.pinned(keys[1]));
  EXPECT_EQ(a.ex.stats().catalog_size, 6u);
}

TEST(Exchange, AdvertiseFastPathPropagatesWithoutExplicitSync) {
  Fixture fx;
  Node a, b;  // advertise_on_update defaults to true
  link(a, b);
  const serve::ModelKey key{"sgd", "gossip"};
  ASSERT_TRUE(a.ex.publish(key, fx.pretrained(13)).ok());

  // The publish advertises at b, which schedules its own pull — no
  // sync_now() anywhere.  Poll briefly; the path is queue hops, not timers.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (b.registry.find(key).ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto handle = b.registry.find(key);
  ASSERT_TRUE(handle.ok()) << "advertise never propagated";
  // Wait for the install to finish (find() can see the row mid-install).
  b.ex.sync_now();
  EXPECT_EQ(stamp_of_model(b, key), stamp_of_model(a, key));
}

TEST(Exchange, OpenOrPretrainSeedsTheMeshOnce) {
  Fixture fx;
  Node a(quiet()), b(quiet());
  link(a, b);
  const serve::ModelKey key{"kmeans", "ctx-0"};

  // Nobody has the job: a pretrains once and publishes.
  core::PreTrainConfig pre;
  pre.epochs = 60;
  const auto seeded = a.ex.open_or_pretrain(key, fx.ds.runs(), pre);
  ASSERT_TRUE(seeded.ok()) << seeded.error_text();
  EXPECT_TRUE(a.registry.fitted(seeded.value()));

  // b now resolves the SAME key with a pull — and a same-job other-context
  // key with a warm start.  No second pretrain anywhere.
  const auto pulled = b.ex.open_or_pretrain(key, fx.ds.runs(), pre);
  ASSERT_TRUE(pulled.ok()) << pulled.error_text();
  EXPECT_EQ(stamp_of_model(b, key), stamp_of_model(a, key));
  EXPECT_EQ(b.ex.stats().pulls_completed, 1u);

  const auto derived = b.ex.open(serve::ModelKey{"kmeans", "ctx-1"});
  ASSERT_TRUE(derived.ok()) << derived.error_text();
  EXPECT_EQ(b.ex.stats().warm_starts, 1u);
}

TEST(Exchange, TypedErrorsForBadKeysAndEmptyMeshes) {
  Node lonely;
  EXPECT_EQ(lonely.ex.open(serve::ModelKey{"", ""}).status(),
            serve::ServeStatus::kInvalidArgument);

  const auto miss = lonely.ex.open(serve::ModelKey{"sgd", "nowhere"});
  EXPECT_EQ(miss.status(), serve::ServeStatus::kUnknownModel);
  EXPECT_NE(miss.message().find("no peers"), std::string::npos) << miss.message();

  const auto pull = lonely.ex.pull_model(serve::ModelKey{"sgd", "nowhere"});
  EXPECT_EQ(pull.status(), serve::ServeStatus::kUnknownModel);

  Fixture fx;
  Node peer;
  lonely.ex.add_peer(std::make_shared<LocalTransport>(peer.ex, "peer"));
  ASSERT_TRUE(peer.ex.publish(serve::ModelKey{"pagerank", "ctx"}, fx.pretrained(17)).ok());
  const auto wrong_job = lonely.ex.open(serve::ModelKey{"sgd", "ctx"});
  EXPECT_EQ(wrong_job.status(), serve::ServeStatus::kUnknownModel);
  EXPECT_NE(wrong_job.message().find("peer(s)"), std::string::npos) << wrong_job.message();
}

TEST(Exchange, ErasedEntriesLeaveTheCatalog) {
  Fixture fx;
  Node a(quiet()), b(quiet());
  link(a, b);
  const serve::ModelKey key{"sgd", "transient"};
  ASSERT_TRUE(a.ex.publish(key, fx.pretrained(19)).ok());
  EXPECT_EQ(a.ex.stats().catalog_size, 1u);

  ASSERT_TRUE(a.registry.erase(a.registry.find(key).value()).ok());
  // The next digest self-heals the catalog: nothing advertised, pulls miss.
  EXPECT_TRUE(a.ex.digest_entries().empty());
  EXPECT_EQ(a.ex.pull_model(key).status(), serve::ServeStatus::kUnknownModel);
  EXPECT_EQ(b.ex.open(key).status(), serve::ServeStatus::kUnknownModel);
}

}  // namespace
}  // namespace bellamy::exchange
