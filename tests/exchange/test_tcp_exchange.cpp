// Exchange over REAL sockets: TcpTransport against live ServeServers with
// attached ExchangeRegistry nodes.  Proves the wire leg of the mesh:
//
//   * TcpTransport round-trips digest / pull / advertise through the server
//     dispatch, checkpoint text arriving byte-for-byte intact,
//   * a PREDICT at a node that lacks the model resolves through
//     open_on_miss -> TCP pull -> bit-identical serving (the full
//     pull-on-miss path a client actually experiences),
//   * a server with no exchange layer answers the three exchange messages
//     with kInvalidArgument — typed, never a dropped connection,
//   * an unreachable peer is a typed kShutdown naming the peer.
//
// Runs under ASan/UBSan in CI (labels "exchange").

#include "exchange/exchange.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "net/net.hpp"
#include "serve/serve.hpp"

namespace bellamy::exchange {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 61;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
  }

  core::BellamyModel pretrained(std::uint64_t seed) const {
    core::BellamyModel model(core::BellamyConfig{}, seed);
    core::PreTrainConfig pre;
    pre.epochs = 60;
    core::pretrain(model, ds.runs(), pre);
    return model;
  }

  data::JobRun query(int scale_out) const {
    data::JobRun q = ds.runs().front();
    q.scale_out = scale_out;
    return q;
  }

  data::Dataset ds;
};

/// A full serving node on an ephemeral loopback port with its exchange
/// layer attached — what bellamy_serverd wires up.
struct TcpNode {
  TcpNode() : ex(registry) {
    serve::ServeOptions serve_options;
    serve_options.workers = 2;
    serve_options.flush_deadline = std::chrono::microseconds(200);
    service.emplace(registry, serve_options);

    net::ServerOptions server_options;
    server_options.peer_service = &ex;
    server.emplace(registry, *service, server_options);
    std::string error;
    if (!server->start(error)) throw std::runtime_error("server start: " + error);
  }

  ~TcpNode() {
    ex.stop();
    server->stop();
    server.reset();
    service.reset();
  }

  std::uint16_t port() const { return server->port(); }

  serve::ModelRegistry registry;
  ExchangeRegistry ex;
  std::optional<serve::PredictionService> service;
  std::optional<net::ServeServer> server;
};

TEST(TcpExchange, TransportRoundTripsDigestPullAndAdvertise) {
  Fixture fx;
  TcpNode a;
  const serve::ModelKey key{"sgd", "wire"};
  ASSERT_TRUE(a.ex.publish(key, fx.pretrained(3)).ok());

  TcpTransport transport("localhost", a.port());  // hostname: getaddrinfo path
  EXPECT_EQ(transport.name(), "localhost:" + std::to_string(a.port()));

  const auto digest = transport.digest();
  ASSERT_TRUE(digest.ok()) << digest.error_text();
  ASSERT_EQ(digest.value().size(), 1u);
  EXPECT_EQ(digest.value()[0].key, key);
  EXPECT_EQ(digest.value()[0].stamp, a.ex.stamp_of(key));

  const auto pulled = transport.pull(key);
  ASSERT_TRUE(pulled.ok()) << pulled.error_text();
  EXPECT_EQ(pulled.value().stamp, a.ex.stamp_of(key));
  const auto local_text = a.registry.checkpoint_text(a.registry.find(key).value());
  ASSERT_TRUE(local_text.ok());
  EXPECT_EQ(pulled.value().checkpoint_text, local_text.value());  // byte-exact

  const auto missing = transport.pull(serve::ModelKey{"sgd", "nowhere"});
  EXPECT_EQ(missing.status(), serve::ServeStatus::kUnknownModel);

  const auto advertised = transport.advertise(digest.value());
  EXPECT_TRUE(advertised.ok()) << advertised.error_text();
}

TEST(TcpExchange, PredictOnMissPullsOverTcpAndServesBitIdentically) {
  Fixture fx;
  core::BellamyModel model = fx.pretrained(5);
  const serve::ModelKey key{"sgd", "pulled"};

  TcpNode a, b;
  ASSERT_TRUE(a.ex.publish(key, model).ok());
  b.ex.add_peer(std::make_shared<TcpTransport>("127.0.0.1", a.port()));

  // A client of b asks for a model only a has: the server's resolve path
  // must pull it over TCP mid-request and serve it bit-identically.
  net::NetClient client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", b.port(), error)) << error;
  const auto served = client.predict(key, fx.query(9));
  ASSERT_TRUE(served.ok()) << served.error_text();
  EXPECT_EQ(served.value(), model.predict_one(fx.query(9)));

  EXPECT_EQ(b.ex.stats().pulls_completed, 1u);
  EXPECT_EQ(b.ex.stamp_of(key), a.ex.stamp_of(key));

  // Same-job other-context: the warm start also works mid-request.
  const serve::ModelKey derived_key{"sgd", "derived"};
  const auto warm = client.predict(derived_key, fx.query(9));
  ASSERT_TRUE(warm.ok()) << warm.error_text();
  EXPECT_EQ(warm.value(), model.predict_one(fx.query(9)));  // direct reuse of the base
  EXPECT_EQ(b.ex.stats().warm_starts, 1u);
  client.close();
}

TEST(TcpExchange, ServerWithoutExchangeLayerAnswersTypedErrors) {
  Fixture fx;
  serve::ModelRegistry registry;
  serve::PredictionService service(registry);
  net::ServeServer server(registry, service, net::ServerOptions{});  // no peer_service
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  net::NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port(), error)) << error;
  const auto digest = client.digest();
  EXPECT_EQ(digest.status(), serve::ServeStatus::kInvalidArgument);
  EXPECT_NE(digest.message().find("exchange"), std::string::npos) << digest.message();
  EXPECT_EQ(client.pull_model(serve::ModelKey{"sgd", "x"}).status(),
            serve::ServeStatus::kInvalidArgument);
  EXPECT_EQ(client.advertise({}).status(), serve::ServeStatus::kInvalidArgument);

  // The connection survived all three rejections.
  const auto miss = client.predict(serve::ModelKey{"sgd", "x"}, fx.query(3));
  EXPECT_EQ(miss.status(), serve::ServeStatus::kUnknownModel);
  client.close();
  server.stop();
}

TEST(TcpExchange, UnreachablePeerIsATypedShutdownNamingThePeer) {
  // Port 1 on loopback: nothing listens there.
  TcpTransport transport("127.0.0.1", 1);
  const auto digest = transport.digest();
  EXPECT_EQ(digest.status(), serve::ServeStatus::kShutdown);
  EXPECT_NE(digest.message().find("127.0.0.1:1"), std::string::npos) << digest.message();

  // open() on a mesh whose only peer is down degrades to kUnknownModel —
  // the unreachable transport never wedges resolution.
  serve::ModelRegistry registry;
  ExchangeRegistry ex(registry);
  ex.add_peer(std::make_shared<TcpTransport>("127.0.0.1", 1));
  EXPECT_EQ(ex.open(serve::ModelKey{"sgd", "x"}).status(),
            serve::ServeStatus::kUnknownModel);
}

}  // namespace
}  // namespace bellamy::exchange
