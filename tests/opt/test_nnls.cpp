#include "opt/nnls.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "opt/least_squares.hpp"
#include "util/rng.hpp"

namespace bellamy::opt {
namespace {

double residual_of(const nn::Matrix& a, const std::vector<double>& x,
                   const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double p = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) p += a(i, j) * x[j];
    s += (p - b[i]) * (p - b[i]);
  }
  return std::sqrt(s);
}

TEST(Nnls, MatchesUnconstrainedWhenSolutionPositive) {
  nn::Matrix a(6, 2);
  std::vector<double> b(6);
  for (int i = 0; i < 6; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i + 1.0;
    b[i] = 2.0 + 3.0 * (i + 1.0);
  }
  const auto nnls = solve_nnls(a, b);
  EXPECT_NEAR(nnls.x[0], 2.0, 1e-9);
  EXPECT_NEAR(nnls.x[1], 3.0, 1e-9);
  EXPECT_TRUE(nnls.converged);
}

TEST(Nnls, ClampsNegativeComponentToZero) {
  // Unconstrained solution has a negative weight; NNLS must zero it.
  nn::Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  const std::vector<double> b{3.0, 2.0, 1.0};  // decreasing -> negative slope
  const auto res = solve_nnls(a, b);
  EXPECT_DOUBLE_EQ(res.x[1], 0.0);
  EXPECT_GT(res.x[0], 0.0);
}

TEST(Nnls, AllZeroWhenBPointsAway) {
  // b is negative: best non-negative combination is x = 0.
  nn::Matrix a{{1.0}, {1.0}};
  const std::vector<double> b{-1.0, -2.0};
  const auto res = solve_nnls(a, b);
  EXPECT_DOUBLE_EQ(res.x[0], 0.0);
  EXPECT_NEAR(res.residual_norm, std::sqrt(5.0), 1e-12);
}

TEST(Nnls, NonNegativityAlwaysHolds) {
  util::Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 8;
    const std::size_t n = 4;
    nn::Matrix a(m, n);
    std::vector<double> b(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
      b[i] = rng.normal();
    }
    const auto res = solve_nnls(a, b);
    for (double x : res.x) EXPECT_GE(x, 0.0);
  }
}

TEST(Nnls, KktOptimality) {
  // At the solution: gradient w = Aᵀ(b - Ax) must satisfy w_j <= 0 for
  // inactive (zero) variables and w_j ≈ 0 for active ones.
  util::Rng rng(2);
  const std::size_t m = 12;
  const std::size_t n = 5;
  nn::Matrix a(m, n);
  std::vector<double> b(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(0.0, 1.0);
    b[i] = rng.uniform(-1.0, 2.0);
  }
  const auto res = solve_nnls(a, b);
  std::vector<double> w(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      double pred = 0.0;
      for (std::size_t k = 0; k < n; ++k) pred += a(i, k) * res.x[k];
      w[j] += a(i, j) * (b[i] - pred);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (res.x[j] > 1e-10) {
      EXPECT_NEAR(w[j], 0.0, 1e-6) << "active variable " << j;
    } else {
      EXPECT_LE(w[j], 1e-6) << "inactive variable " << j;
    }
  }
}

TEST(Nnls, BeatsClampedLeastSquares) {
  // NNLS residual must be <= residual of "solve unconstrained then clamp".
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 10;
    const std::size_t n = 3;
    nn::Matrix a(m, n);
    std::vector<double> b(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal(1.0, 1.0);
      b[i] = rng.normal(0.0, 2.0);
    }
    const auto nnls = solve_nnls(a, b);
    auto clamped = solve_least_squares(a, b).x;
    for (double& v : clamped) v = std::max(v, 0.0);
    EXPECT_LE(nnls.residual_norm, residual_of(a, clamped, b) + 1e-9);
  }
}

TEST(Nnls, SinglePointSingleColumn) {
  nn::Matrix a{{2.0}};
  const auto res = solve_nnls(a, {6.0});
  EXPECT_NEAR(res.x[0], 3.0, 1e-12);
}

TEST(Nnls, UnderdeterminedSinglePointManyColumns) {
  // One observation, four features (the Ernest n=1 case): must not crash and
  // must produce a non-negative solution fitting the point.
  nn::Matrix a(1, 4);
  a(0, 0) = 1.0;
  a(0, 1) = 0.5;
  a(0, 2) = 0.69;
  a(0, 3) = 2.0;
  const auto res = solve_nnls(a, {100.0});
  for (double x : res.x) EXPECT_GE(x, 0.0);
  EXPECT_NEAR(res.residual_norm, 0.0, 1e-6);
}

TEST(Nnls, InvalidInputsThrow) {
  EXPECT_THROW(solve_nnls(nn::Matrix(2, 2), {1.0}), std::invalid_argument);
  EXPECT_THROW(solve_nnls(nn::Matrix(), {}), std::invalid_argument);
}

TEST(Nnls, ErnestStyleRecovery) {
  // Generate data from a known Ernest curve and recover theta.
  const std::vector<double> theta{10.0, 200.0, 5.0, 1.5};
  std::vector<int> xs{2, 4, 6, 8, 10, 12};
  nn::Matrix a(xs.size(), 4);
  std::vector<double> b(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    a(i, 0) = 1.0;
    a(i, 1) = 1.0 / x;
    a(i, 2) = std::log(x);
    a(i, 3) = x;
    b[i] = theta[0] + theta[1] / x + theta[2] * std::log(x) + theta[3] * x;
  }
  const auto res = solve_nnls(a, b);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(res.x[j], theta[j], 1e-6);
}

}  // namespace
}  // namespace bellamy::opt
