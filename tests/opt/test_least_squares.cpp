#include "opt/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace bellamy::opt {
namespace {

TEST(LeastSquares, SolvesExactSquareSystem) {
  const nn::Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const auto res = solve_least_squares(a, {6.0, 8.0});
  ASSERT_EQ(res.x.size(), 2u);
  EXPECT_NEAR(res.x[0], 3.0, 1e-12);
  EXPECT_NEAR(res.x[1], 2.0, 1e-12);
  EXPECT_NEAR(res.residual_norm, 0.0, 1e-12);
}

TEST(LeastSquares, OverdeterminedConsistentSystem) {
  // y = 1 + 2x sampled without noise.
  nn::Matrix a(5, 2);
  std::vector<double> b(5);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i;
    b[i] = 1.0 + 2.0 * i;
  }
  const auto res = solve_least_squares(a, b);
  EXPECT_NEAR(res.x[0], 1.0, 1e-10);
  EXPECT_NEAR(res.x[1], 2.0, 1e-10);
  EXPECT_NEAR(res.residual_norm, 0.0, 1e-10);
}

TEST(LeastSquares, MinimizesResidualUnderNoise) {
  util::Rng rng(1);
  const std::size_t m = 50;
  nn::Matrix a(m, 3);
  std::vector<double> b(m);
  for (std::size_t i = 0; i < m; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = rng.uniform(0.0, 10.0);
    a(i, 2) = rng.uniform(-5.0, 5.0);
    b[i] = 3.0 + 0.5 * a(i, 1) - 2.0 * a(i, 2) + rng.normal(0.0, 0.1);
  }
  const auto res = solve_least_squares(a, b);
  EXPECT_NEAR(res.x[0], 3.0, 0.2);
  EXPECT_NEAR(res.x[1], 0.5, 0.05);
  EXPECT_NEAR(res.x[2], -2.0, 0.05);

  // Perturbing the solution must not reduce the residual.
  auto residual = [&](const std::vector<double>& x) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      double p = 0.0;
      for (std::size_t j = 0; j < 3; ++j) p += a(i, j) * x[j];
      s += (p - b[i]) * (p - b[i]);
    }
    return std::sqrt(s);
  };
  EXPECT_NEAR(residual(res.x), res.residual_norm, 1e-9);
  for (std::size_t j = 0; j < 3; ++j) {
    auto perturbed = res.x;
    perturbed[j] += 0.01;
    EXPECT_GE(residual(perturbed) + 1e-12, res.residual_norm);
  }
}

TEST(LeastSquares, SizeMismatchThrows) {
  EXPECT_THROW(solve_least_squares(nn::Matrix(3, 2), {1.0, 2.0}), std::invalid_argument);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  EXPECT_THROW(solve_least_squares(nn::Matrix(2, 3), {1.0, 2.0}), std::invalid_argument);
}

TEST(LeastSquares, RankDeficientThrows) {
  // Two identical columns.
  nn::Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_THROW(solve_least_squares(a, {1.0, 2.0, 3.0}), std::runtime_error);
}

TEST(LeastSquares, SingleColumn) {
  nn::Matrix a{{1.0}, {2.0}};
  const auto res = solve_least_squares(a, {2.0, 4.0});
  EXPECT_NEAR(res.x[0], 2.0, 1e-12);
}

TEST(LeastSquares, ResidualIsOrthogonalComplementNorm) {
  // b has a component orthogonal to the column space.
  nn::Matrix a{{1.0}, {0.0}};
  const auto res = solve_least_squares(a, {3.0, 4.0});
  EXPECT_NEAR(res.x[0], 3.0, 1e-12);
  EXPECT_NEAR(res.residual_norm, 4.0, 1e-12);
}

}  // namespace
}  // namespace bellamy::opt
