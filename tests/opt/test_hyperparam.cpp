#include "opt/hyperparam.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "parallel/thread_pool.hpp"

namespace bellamy::opt {
namespace {

TEST(SearchSpace, GridSizeIsProductOfAxes) {
  const SearchSpace space;  // paper defaults: 3 x 3 x 3
  EXPECT_EQ(space.grid_size(), 27u);
}

TEST(SearchSpace, AtEnumeratesDistinctConfigs) {
  const SearchSpace space;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < space.grid_size(); ++i) {
    seen.insert(space.at(i).to_string());
  }
  EXPECT_EQ(seen.size(), 27u);
  EXPECT_THROW(space.at(27), std::out_of_range);
}

TEST(SearchSpace, AtCoversAllAxisValues) {
  const SearchSpace space;
  std::set<double> dropouts;
  std::set<double> lrs;
  std::set<double> wds;
  for (std::size_t i = 0; i < space.grid_size(); ++i) {
    const auto cfg = space.at(i);
    dropouts.insert(cfg.dropout);
    lrs.insert(cfg.learning_rate);
    wds.insert(cfg.weight_decay);
  }
  EXPECT_EQ(dropouts.size(), 3u);
  EXPECT_EQ(lrs.size(), 3u);
  EXPECT_EQ(wds.size(), 3u);
}

TEST(RandomSearch, EvaluatesRequestedTrialCount) {
  const SearchSpace space;
  std::atomic<int> calls{0};
  const auto outcome = random_search(
      space,
      [&](const TrialConfig&) {
        calls.fetch_add(1);
        return 1.0;
      },
      12, 42);
  EXPECT_EQ(calls.load(), 12);
  EXPECT_EQ(outcome.trials.size(), 12u);
}

TEST(RandomSearch, TrialsAreDistinctGridPoints) {
  const SearchSpace space;
  const auto outcome =
      random_search(space, [](const TrialConfig&) { return 0.0; }, 12, 7);
  std::set<std::string> seen;
  for (const auto& t : outcome.trials) seen.insert(t.config.to_string());
  EXPECT_EQ(seen.size(), 12u);
}

TEST(RandomSearch, FindsMinimum) {
  const SearchSpace space;
  // Objective minimized at dropout=0.05, lr=1e-3, wd=1e-4; evaluate the whole
  // grid so the optimum must be found.
  const auto outcome = random_search(
      space,
      [](const TrialConfig& c) {
        return c.dropout + c.learning_rate + c.weight_decay;
      },
      27, 1);
  EXPECT_DOUBLE_EQ(outcome.best.config.dropout, 0.05);
  EXPECT_DOUBLE_EQ(outcome.best.config.learning_rate, 1e-3);
  EXPECT_DOUBLE_EQ(outcome.best.config.weight_decay, 1e-4);
}

TEST(RandomSearch, CapsTrialsAtGridSize) {
  const SearchSpace space;
  const auto outcome =
      random_search(space, [](const TrialConfig&) { return 0.0; }, 1000, 3);
  EXPECT_EQ(outcome.trials.size(), 27u);
}

TEST(RandomSearch, DeterministicGivenSeed) {
  const SearchSpace space;
  auto obj = [](const TrialConfig& c) { return c.dropout * c.learning_rate; };
  const auto a = random_search(space, obj, 12, 5);
  const auto b = random_search(space, obj, 12, 5);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].config.to_string(), b.trials[i].config.to_string());
  }
}

TEST(RandomSearch, WorksOnThreadPool) {
  parallel::ThreadPool pool(4);
  const SearchSpace space;
  std::atomic<int> calls{0};
  const auto outcome = random_search(
      space,
      [&](const TrialConfig& c) {
        calls.fetch_add(1);
        return c.learning_rate;
      },
      12, 11, &pool);
  EXPECT_EQ(calls.load(), 12);
  EXPECT_DOUBLE_EQ(outcome.best.config.learning_rate, 1e-3);
}

TEST(RandomSearch, NullObjectiveThrows) {
  EXPECT_THROW(random_search(SearchSpace{}, Objective{}, 5, 1), std::invalid_argument);
}

TEST(RandomSearch, EmptySpaceThrows) {
  SearchSpace space;
  space.dropout.clear();
  EXPECT_THROW(random_search(space, [](const TrialConfig&) { return 0.0; }, 5, 1),
               std::invalid_argument);
}

TEST(TrialConfig, ToStringContainsValues) {
  TrialConfig cfg;
  cfg.dropout = 0.20;
  cfg.learning_rate = 1e-2;
  cfg.weight_decay = 1e-3;
  const std::string s = cfg.to_string();
  EXPECT_NE(s.find("0.20"), std::string::npos);
  EXPECT_NE(s.find("1e-02"), std::string::npos);
}

}  // namespace
}  // namespace bellamy::opt
