#include "encoding/ngram.hpp"

#include <gtest/gtest.h>

namespace bellamy::encoding {
namespace {

TEST(Ngram, Unigrams) {
  const auto g = extract_ngrams("abc", 1);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0], "a");
  EXPECT_EQ(g[2], "c");
}

TEST(Ngram, Bigrams) {
  const auto g = extract_ngrams("abcd", 2);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0], "ab");
  EXPECT_EQ(g[1], "bc");
  EXPECT_EQ(g[2], "cd");
}

TEST(Ngram, Trigrams) {
  const auto g = extract_ngrams("spark", 3);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0], "spa");
  EXPECT_EQ(g[2], "ark");
}

TEST(Ngram, TextShorterThanNIsEmpty) {
  EXPECT_TRUE(extract_ngrams("ab", 3).empty());
  EXPECT_TRUE(extract_ngrams("", 1).empty());
}

TEST(Ngram, ExactLengthYieldsOne) {
  const auto g = extract_ngrams("abc", 3);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0], "abc");
}

TEST(Ngram, ZeroNThrows) {
  EXPECT_THROW(extract_ngrams("abc", 0), std::invalid_argument);
}

TEST(Ngram, RangeCombinesAllSizes) {
  const auto g = extract_ngram_range("abc", 1, 3);
  // 3 unigrams + 2 bigrams + 1 trigram.
  EXPECT_EQ(g.size(), 6u);
}

TEST(Ngram, RangeCountFormula) {
  const std::string text = "m4.2xlarge";
  const auto g = extract_ngram_range(text, 1, 3);
  const std::size_t n = text.size();
  EXPECT_EQ(g.size(), n + (n - 1) + (n - 2));
}

TEST(Ngram, RangeInvalidBoundsThrow) {
  EXPECT_THROW(extract_ngram_range("abc", 0, 2), std::invalid_argument);
  EXPECT_THROW(extract_ngram_range("abc", 3, 2), std::invalid_argument);
}

TEST(Ngram, RangeSingleSizeEqualsPlain) {
  EXPECT_EQ(extract_ngram_range("test", 2, 2), extract_ngrams("test", 2));
}

}  // namespace
}  // namespace bellamy::encoding
