#include "encoding/vocabulary.hpp"

#include <gtest/gtest.h>

namespace bellamy::encoding {
namespace {

TEST(Vocabulary, DefaultContainsAlphanumerics) {
  Vocabulary v;
  EXPECT_TRUE(v.contains('a'));
  EXPECT_TRUE(v.contains('z'));
  EXPECT_TRUE(v.contains('0'));
  EXPECT_TRUE(v.contains('9'));
}

TEST(Vocabulary, CaseInsensitiveContains) {
  Vocabulary v;
  EXPECT_TRUE(v.contains('A'));
  EXPECT_TRUE(v.contains('Z'));
}

TEST(Vocabulary, DefaultSpecialSymbols) {
  Vocabulary v;
  EXPECT_TRUE(v.contains('.'));
  EXPECT_TRUE(v.contains('-'));
  EXPECT_TRUE(v.contains('_'));
  EXPECT_TRUE(v.contains('/'));
  EXPECT_TRUE(v.contains(':'));
  EXPECT_FALSE(v.contains('!'));
  EXPECT_FALSE(v.contains('@'));
}

TEST(Vocabulary, CleanLowercasesAndStrips) {
  Vocabulary v;
  EXPECT_EQ(v.clean("M4.2xLarge"), "m4.2xlarge");
  EXPECT_EQ(v.clean("Hello, World!"), "hello world");
  EXPECT_EQ(v.clean("§§§"), "");
}

TEST(Vocabulary, CleanPreservesAllowedSymbols) {
  Vocabulary v;
  EXPECT_EQ(v.clean("a-b_c/d:e.f"), "a-b_c/d:e.f");
}

TEST(Vocabulary, CustomSymbols) {
  Vocabulary v("+");
  EXPECT_TRUE(v.contains('+'));
  EXPECT_FALSE(v.contains('.'));
  EXPECT_EQ(v.clean("a+b.c"), "a+bc");
}

TEST(Vocabulary, SizeCountsAdmissible) {
  Vocabulary v("");
  EXPECT_EQ(v.size(), 26u + 10u);
  Vocabulary with_defaults;
  EXPECT_EQ(with_defaults.size(), 26u + 10u + 6u);
}

}  // namespace
}  // namespace bellamy::encoding
