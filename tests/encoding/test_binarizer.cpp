#include "encoding/binarizer.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bellamy::encoding {
namespace {

TEST(Binarizer, EncodesZero) {
  Binarizer b(8);
  const auto bits = b.transform(0);
  ASSERT_EQ(bits.size(), 8u);
  for (double bit : bits) EXPECT_DOUBLE_EQ(bit, 0.0);
}

TEST(Binarizer, EncodesKnownValueMsbFirst) {
  Binarizer b(8);
  const auto bits = b.transform(5);  // 00000101
  const std::vector<double> expected{0, 0, 0, 0, 0, 1, 0, 1};
  EXPECT_EQ(bits, expected);
}

TEST(Binarizer, MaxValue) {
  Binarizer b(8);
  EXPECT_EQ(b.max_value(), 255u);
  const auto bits = b.transform(255);
  for (double bit : bits) EXPECT_DOUBLE_EQ(bit, 1.0);
}

TEST(Binarizer, OverflowThrows) {
  Binarizer b(8);
  EXPECT_THROW(b.transform(256), std::out_of_range);
}

TEST(Binarizer, DefaultWidthHandlesPaperValues) {
  // N = 40 gives L = 39 bits: plenty for dataset sizes in MB (Fig. 4 shows
  // '19353' MB) and memory sizes.
  Binarizer b(39);
  EXPECT_NO_THROW(b.transform(19353));
  EXPECT_NO_THROW(b.transform(62464));
  EXPECT_GT(b.max_value(), 500ULL * 1000 * 1000 * 1000);  // > 5e11
}

TEST(Binarizer, InverseRoundTrip) {
  Binarizer b(16);
  for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 255ULL, 256ULL, 65535ULL}) {
    EXPECT_EQ(b.inverse(b.transform(v)), v);
  }
}

TEST(Binarizer, InverseRejectsBadInput) {
  Binarizer b(4);
  EXPECT_THROW(b.inverse({1.0, 0.0}), std::invalid_argument);          // wrong size
  EXPECT_THROW(b.inverse({1.0, 0.5, 0.0, 0.0}), std::invalid_argument);  // non-binary
}

TEST(Binarizer, InvalidWidthThrows) {
  EXPECT_THROW(Binarizer(0), std::invalid_argument);
  EXPECT_THROW(Binarizer(64), std::invalid_argument);
  EXPECT_NO_THROW(Binarizer(63));
}

TEST(Binarizer, DistinctValuesDistinctCodes) {
  Binarizer b(10);
  EXPECT_NE(b.transform(100), b.transform(101));
}

// Property sweep: round-trip over random values for several widths.
class BinarizerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BinarizerSweep, RandomRoundTrip) {
  const std::size_t bits = GetParam();
  Binarizer b(bits);
  util::Rng rng(bits);
  for (int i = 0; i < 200; ++i) {
    const auto v = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(b.max_value())));
    const auto code = b.transform(v);
    ASSERT_EQ(code.size(), bits);
    EXPECT_EQ(b.inverse(code), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BinarizerSweep,
                         ::testing::Values<std::size_t>(1, 4, 8, 16, 39, 63));

}  // namespace
}  // namespace bellamy::encoding
