#include "encoding/property_encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bellamy::encoding {
namespace {

TEST(PropertyEncoder, OutputLengthIsN) {
  PropertyEncoder enc;
  EXPECT_EQ(enc.vector_size(), 40u);
  EXPECT_EQ(enc.encode(PropertyValue{std::string("m4.2xlarge")}).size(), 40u);
  EXPECT_EQ(enc.encode(PropertyValue{std::uint64_t{123}}).size(), 40u);
}

TEST(PropertyEncoder, NumericUsesBinarizerLambda) {
  PropertyEncoder enc;
  const auto v = enc.encode(PropertyValue{std::uint64_t{5}});
  EXPECT_DOUBLE_EQ(v[0], PropertyEncoder::kLambdaBinarizer);
  // last two bits of 5 = ...101
  EXPECT_DOUBLE_EQ(v[39], 1.0);
  EXPECT_DOUBLE_EQ(v[38], 0.0);
  EXPECT_DOUBLE_EQ(v[37], 1.0);
}

TEST(PropertyEncoder, TextUsesHasherLambda) {
  PropertyEncoder enc;
  const auto v = enc.encode(PropertyValue{std::string("m4.2xlarge")});
  EXPECT_DOUBLE_EQ(v[0], PropertyEncoder::kLambdaHasher);
  double norm = 0.0;
  for (std::size_t i = 1; i < v.size(); ++i) norm += v[i] * v[i];
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-12);
}

TEST(PropertyEncoder, NumericStringTakesBinarizerPath) {
  // "25" (max iterations, Fig. 4) must encode identically to 25.
  PropertyEncoder enc;
  EXPECT_EQ(enc.encode(PropertyValue{std::string("25")}),
            enc.encode(PropertyValue{std::uint64_t{25}}));
}

TEST(PropertyEncoder, HugeNumericStringFallsBackToHasher) {
  PropertyEncoder enc;
  // 2^63 > max 39-bit value -> hashing path.
  const auto v = enc.encode(PropertyValue{std::string("9223372036854775808")});
  EXPECT_DOUBLE_EQ(v[0], PropertyEncoder::kLambdaHasher);
}

TEST(PropertyEncoder, MixedTextNeverBinarized) {
  PropertyEncoder enc;
  const auto v = enc.encode(PropertyValue{std::string("25iters")});
  EXPECT_DOUBLE_EQ(v[0], PropertyEncoder::kLambdaHasher);
}

TEST(PropertyEncoder, Deterministic) {
  PropertyEncoder enc;
  const PropertyValue p{std::string("features-1000-sparse")};
  EXPECT_EQ(enc.encode(p), enc.encode(p));
}

TEST(PropertyEncoder, DistinctPropertiesDistinctVectors) {
  PropertyEncoder enc;
  EXPECT_NE(enc.encode(PropertyValue{std::string("m4.2xlarge")}),
            enc.encode(PropertyValue{std::string("r4.2xlarge")}));
  EXPECT_NE(enc.encode(PropertyValue{std::uint64_t{14540}}),
            enc.encode(PropertyValue{std::uint64_t{19353}}));
}

TEST(PropertyEncoder, EncodeAllStacksRows) {
  PropertyEncoder enc;
  const std::vector<PropertyValue> props{PropertyValue{std::string("m4.2xlarge")},
                                         PropertyValue{std::uint64_t{25}},
                                         PropertyValue{std::uint64_t{19353}}};
  const nn::Matrix m = enc.encode_all(props);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 40u);
  EXPECT_DOUBLE_EQ(m(0, 0), PropertyEncoder::kLambdaHasher);
  EXPECT_DOUBLE_EQ(m(1, 0), PropertyEncoder::kLambdaBinarizer);
  const auto row2 = enc.encode(props[2]);
  for (std::size_t j = 0; j < 40; ++j) EXPECT_DOUBLE_EQ(m(2, j), row2[j]);
}

TEST(PropertyEncoder, CustomVectorSize) {
  PropertyEncoder::Config cfg;
  cfg.vector_size = 17;
  PropertyEncoder enc(cfg);
  EXPECT_EQ(enc.encode(PropertyValue{std::string("x")}).size(), 17u);
  EXPECT_EQ(enc.encode(PropertyValue{std::uint64_t{9}}).size(), 17u);
}

TEST(PropertyEncoder, TooSmallVectorSizeThrows) {
  PropertyEncoder::Config cfg;
  cfg.vector_size = 1;
  EXPECT_THROW(PropertyEncoder{cfg}, std::invalid_argument);
}

TEST(PropertyEncoder, LooksNumeric) {
  EXPECT_TRUE(looks_numeric("123"));
  EXPECT_FALSE(looks_numeric("12.3"));
  EXPECT_FALSE(looks_numeric("abc"));
  EXPECT_FALSE(looks_numeric(""));
}

TEST(PropertyEncoder, CachedEncodeMatchesUncachedAndCountsHits) {
  PropertyEncoder enc;
  PropertyEncodeCache cache;
  const std::vector<PropertyValue> values{
      PropertyValue{std::string("m4.2xlarge")}, PropertyValue{std::uint64_t{4096}},
      PropertyValue{std::string("m4.2xlarge")},  // repeat -> hit
      PropertyValue{std::uint64_t{4096}},        // repeat -> hit
      PropertyValue{std::string("4096")},        // text, distinct cache entry
  };
  for (const auto& v : values) {
    EXPECT_EQ(enc.encode_cached(v, cache), enc.encode(v));
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(PropertyEncoder, CachedReferencesStayValidAcrossInserts) {
  // predict_batch keys unique property rows by the cached vector's address,
  // so references handed out earlier must survive later insertions.
  PropertyEncoder enc;
  PropertyEncodeCache cache;
  const auto& first = enc.encode_cached(PropertyValue{std::string("sgd")}, cache);
  const std::vector<double> copy = first;
  for (std::uint64_t i = 0; i < 200; ++i) {
    enc.encode_cached(PropertyValue{i}, cache);
  }
  EXPECT_EQ(first, copy);
  EXPECT_EQ(&enc.encode_cached(PropertyValue{std::string("sgd")}, cache), &first);
}

TEST(PropertyEncoder, ValuesStayInTanhRange) {
  // The decoder reconstructs with tanh, so every encoded component must lie
  // in [-1, 1] (paper: tanh "is in line with the nature of our vectorized
  // properties").
  PropertyEncoder enc;
  for (const auto& p :
       {PropertyValue{std::string("web-graph")}, PropertyValue{std::uint64_t{61440}},
        PropertyValue{std::string("GET /api")}}) {
    for (double v : enc.encode(p)) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

}  // namespace
}  // namespace bellamy::encoding
