#include "encoding/hashing_vectorizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace bellamy::encoding {
namespace {

double l2norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

TEST(HashingVectorizer, OutputDimensionMatchesConfig) {
  HashingVectorizer::Config cfg;
  cfg.num_features = 39;
  HashingVectorizer hv(cfg);
  EXPECT_EQ(hv.transform("m4.2xlarge").size(), 39u);
}

TEST(HashingVectorizer, Deterministic) {
  HashingVectorizer hv;
  EXPECT_EQ(hv.transform("pagerank"), hv.transform("pagerank"));
}

TEST(HashingVectorizer, CaseInsensitiveViaVocabulary) {
  HashingVectorizer hv;
  EXPECT_EQ(hv.transform("SGD-Job"), hv.transform("sgd-job"));
}

TEST(HashingVectorizer, StripsNonVocabularyCharacters) {
  HashingVectorizer hv;
  EXPECT_EQ(hv.transform("a!b@c"), hv.transform("abc"));
}

TEST(HashingVectorizer, DifferentTextsUsuallyDiffer) {
  HashingVectorizer hv;
  EXPECT_NE(hv.transform("m4.2xlarge"), hv.transform("r4.2xlarge"));
  EXPECT_NE(hv.transform("grep"), hv.transform("sort"));
}

TEST(HashingVectorizer, UnitNormWhenNonEmpty) {
  HashingVectorizer hv;
  for (const char* text : {"sgd", "a", "m4.2xlarge", "some longer parameter string"}) {
    EXPECT_NEAR(l2norm(hv.transform(text)), 1.0, 1e-12) << text;
  }
}

TEST(HashingVectorizer, EmptyTextIsZeroVector) {
  HashingVectorizer hv;
  const auto v = hv.transform("");
  EXPECT_DOUBLE_EQ(l2norm(v), 0.0);
}

TEST(HashingVectorizer, TextOutsideVocabularyIsZeroVector) {
  HashingVectorizer hv;
  EXPECT_DOUBLE_EQ(l2norm(hv.transform("!!!@@@")), 0.0);
}

TEST(HashingVectorizer, CountsWithoutNormalization) {
  HashingVectorizer::Config cfg;
  cfg.l2_normalize = false;
  HashingVectorizer hv(cfg);
  // "aa" -> unigrams {a, a}, bigram {aa}: total mass 3 distributed in buckets.
  const auto v = hv.transform("aa");
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

TEST(HashingVectorizer, AlternateSignMode) {
  HashingVectorizer::Config cfg;
  cfg.alternate_sign = true;
  cfg.l2_normalize = false;
  HashingVectorizer hv(cfg);
  const auto v = hv.transform("some reasonably long text value");
  bool has_negative = false;
  for (double x : v) has_negative |= x < 0.0;
  EXPECT_TRUE(has_negative);
}

TEST(HashingVectorizer, InvalidConfigThrows) {
  HashingVectorizer::Config cfg;
  cfg.num_features = 0;
  EXPECT_THROW(HashingVectorizer{cfg}, std::invalid_argument);
  HashingVectorizer::Config bad_ngrams;
  bad_ngrams.min_ngram = 3;
  bad_ngrams.max_ngram = 2;
  EXPECT_THROW(HashingVectorizer{bad_ngrams}, std::invalid_argument);
}

// Property sweep: unit-norm and determinism over random strings.
class HashingVectorizerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HashingVectorizerSweep, RandomStringsNormalizedAndStable) {
  util::Rng rng(GetParam());
  HashingVectorizer hv;
  const std::string alphabet = "abcdefghijklmnopqrstuvwxyz0123456789.-_/: ";
  for (int trial = 0; trial < 50; ++trial) {
    std::string s;
    const auto len = static_cast<std::size_t>(rng.uniform_int(1, 30));
    for (std::size_t i = 0; i < len; ++i) {
      s += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    const auto v = hv.transform(s);
    EXPECT_EQ(v.size(), hv.config().num_features);
    const double norm = l2norm(v);
    // Strings of only spaces hash to nothing; anything else must be unit norm.
    if (norm > 0.0) EXPECT_NEAR(norm, 1.0, 1e-12) << s;
    EXPECT_EQ(v, hv.transform(s)) << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashingVectorizerSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

}  // namespace
}  // namespace bellamy::encoding
