// Reduction-policy properties: every policy is a deterministic, seeded,
// order-preserving map from (history, config) to a coreset that respects the
// budget EXACTLY, and the coverage policy never hollows out a populated
// scale-out bin.  Determinism is asserted byte-for-byte, including calls
// racing on different threads (the selection must not depend on any global
// pool state).

#include "reduce/reduction.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/bellamy_model.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"

namespace bellamy::reduce {
namespace {

constexpr ReductionPolicy kAllPolicies[] = {
    ReductionPolicy::kNone, ReductionPolicy::kUniform, ReductionPolicy::kRecency,
    ReductionPolicy::kCoverage, ReductionPolicy::kLossAware};

constexpr ReductionPolicy kActivePolicies[] = {
    ReductionPolicy::kUniform, ReductionPolicy::kRecency, ReductionPolicy::kCoverage,
    ReductionPolicy::kLossAware};

/// Byte-level fingerprint of a coreset: any field drift or reordering shows.
std::string fingerprint(const std::vector<data::JobRun>& runs) {
  std::ostringstream out;
  for (const data::JobRun& r : runs) {
    out << r.algorithm << '\x1f' << r.environment << '\x1f' << r.node_type << '\x1f'
        << r.job_parameters << '\x1f' << r.dataset_size_mb << '\x1f'
        << r.data_characteristics << '\x1f' << r.memory_mb << '\x1f' << r.cpu_cores << '\x1f'
        << r.scale_out << '\x1f';
    // Bit-exact runtime: text formatting would round.
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof r.runtime_s);
    std::memcpy(&bits, &r.runtime_s, sizeof bits);
    out << bits << '\x1e';
  }
  return out.str();
}

std::vector<data::JobRun> history(std::size_t n, std::uint64_t seed = 5) {
  data::C3OGeneratorConfig cfg;
  cfg.seed = seed;
  const data::Dataset ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 6);
  std::vector<data::JobRun> runs = ds.runs();
  if (runs.size() > n) runs.resize(n);
  return runs;
}

ReductionConfig config_of(ReductionPolicy policy, std::size_t budget,
                          std::uint64_t seed = 17) {
  ReductionConfig cfg;
  cfg.policy = policy;
  cfg.budget = budget;
  cfg.seed = seed;
  return cfg;
}

TEST(ReductionPolicies, PolicyNamesRoundTripThroughParse) {
  for (const ReductionPolicy policy : kAllPolicies) {
    const auto parsed = parse_policy(policy_name(policy));
    ASSERT_TRUE(parsed.has_value()) << policy_name(policy);
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_EQ(parse_policy("loss_aware"), ReductionPolicy::kLossAware);  // alias
  EXPECT_FALSE(parse_policy("").has_value());
  EXPECT_FALSE(parse_policy("newest").has_value());
}

TEST(ReductionPolicies, InactiveConfigsAreIdentity) {
  const std::vector<data::JobRun> runs = history(40);
  for (const ReductionPolicy policy : kAllPolicies) {
    // budget 0 = unbounded, kNone = off: both keep everything.
    for (const std::size_t budget : {std::size_t{0}, runs.size(), runs.size() + 100}) {
      if (policy != ReductionPolicy::kNone && budget != 0 && budget < runs.size()) continue;
      ReductionReport report;
      const auto kept = reduce_runs(runs, config_of(policy, budget), nullptr, &report);
      EXPECT_EQ(fingerprint(kept), fingerprint(runs))
          << policy_name(policy) << " budget " << budget;
      EXPECT_EQ(report.kept_runs, runs.size());
      EXPECT_EQ(report.dropped_runs, 0u);
    }
  }
}

TEST(ReductionPolicies, BudgetIsRespectedExactly) {
  const std::vector<data::JobRun> runs = history(60);
  for (const ReductionPolicy policy : kActivePolicies) {
    for (const std::size_t budget : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                                     std::size_t{31}, runs.size() - 1}) {
      ReductionReport report;
      const auto kept = reduce_runs(runs, config_of(policy, budget), nullptr, &report);
      EXPECT_EQ(kept.size(), budget) << policy_name(policy) << " budget " << budget;
      EXPECT_EQ(report.kept_runs, budget);
      EXPECT_EQ(report.input_runs, runs.size());
      EXPECT_EQ(report.dropped_runs, runs.size() - budget);
      EXPECT_EQ(report.policy, policy);
    }
  }
}

TEST(ReductionPolicies, KeptRunsPreserveHistoryOrder) {
  // The coreset must be a SUBSEQUENCE of the history: every policy returns
  // indices sorted ascending, so kept runs appear in their original order.
  const std::vector<data::JobRun> runs = history(50);
  for (const ReductionPolicy policy : kActivePolicies) {
    const auto kept = reduce_runs(runs, config_of(policy, 20));
    std::size_t cursor = 0;
    for (const data::JobRun& k : kept) {
      const std::string want = fingerprint({k});
      while (cursor < runs.size() && fingerprint({runs[cursor]}) != want) ++cursor;
      ASSERT_LT(cursor, runs.size())
          << policy_name(policy) << ": kept run out of order or not from the history";
      ++cursor;
    }
  }
}

TEST(ReductionPolicies, SameSeedAndHistoryIsByteIdenticalAcrossRunsAndThreads) {
  const std::vector<data::JobRun> runs = history(80);
  for (const ReductionPolicy policy : kActivePolicies) {
    const ReductionConfig cfg = config_of(policy, 24, 99);
    const std::string want = fingerprint(reduce_runs(runs, cfg));

    // Repeated calls on this thread.
    for (int i = 0; i < 3; ++i) EXPECT_EQ(fingerprint(reduce_runs(runs, cfg)), want);

    // Racing calls on 8 threads: selection must not read any shared state.
    std::vector<std::string> got(8);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < got.size(); ++t) {
      threads.emplace_back([&, t] { got[t] = fingerprint(reduce_runs(runs, cfg)); });
    }
    for (std::thread& t : threads) t.join();
    for (const std::string& g : got) EXPECT_EQ(g, want) << policy_name(policy);
  }
}

TEST(ReductionPolicies, DifferentSeedsMoveTheStochasticPolicies) {
  const std::vector<data::JobRun> runs = history(80);
  for (const ReductionPolicy policy : {ReductionPolicy::kUniform, ReductionPolicy::kRecency}) {
    const auto a = reduce_runs(runs, config_of(policy, 20, 1));
    const auto b = reduce_runs(runs, config_of(policy, 20, 2));
    EXPECT_NE(fingerprint(a), fingerprint(b)) << policy_name(policy);
  }
}

TEST(ReductionPolicies, CoverageNeverEmptiesAPopulatedScaleOutBin) {
  const std::vector<data::JobRun> runs = history(100);
  std::set<int> bins;
  for (const data::JobRun& r : runs) bins.insert(r.scale_out);
  ASSERT_GE(bins.size(), 3u) << "fixture too homogeneous to test coverage";

  for (std::size_t budget = bins.size(); budget < runs.size(); budget += 5) {
    ReductionReport report;
    const auto kept =
        reduce_runs(runs, config_of(ReductionPolicy::kCoverage, budget), nullptr, &report);
    std::set<int> kept_bins;
    for (const data::JobRun& r : kept) kept_bins.insert(r.scale_out);
    EXPECT_EQ(kept_bins, bins) << "budget " << budget << " hollowed out a scale-out bin";
    EXPECT_EQ(report.kept_scaleout_bins, bins.size());
    EXPECT_EQ(report.input_scaleout_bins, bins.size());
    EXPECT_DOUBLE_EQ(report.scaleout_coverage(), 1.0);
    EXPECT_EQ(report.min_scaleout_kept, *bins.begin());
    EXPECT_EQ(report.max_scaleout_kept, *bins.rbegin());
  }
}

TEST(ReductionPolicies, RecencyFavorsNewerRuns) {
  // With a short half-life, the tail of the history must dominate the
  // coreset: mean kept index > mean history index.
  const std::vector<data::JobRun> runs = history(80);
  ReductionConfig cfg = config_of(ReductionPolicy::kRecency, 16, 3);
  cfg.recency_half_life = 4.0;
  const auto kept = reduce_runs(runs, cfg);
  ASSERT_EQ(kept.size(), 16u);

  double kept_mean = 0.0;
  std::size_t cursor = 0;
  for (const data::JobRun& k : kept) {
    while (fingerprint({runs[cursor]}) != fingerprint({k})) ++cursor;
    kept_mean += static_cast<double>(cursor);
    ++cursor;
  }
  kept_mean /= static_cast<double>(kept.size());
  const double history_mean = static_cast<double>(runs.size() - 1) / 2.0;
  EXPECT_GT(kept_mean, history_mean);
}

TEST(ReductionPolicies, LossAwareKeepsTheHardestRunsForTheModel) {
  data::C3OGeneratorConfig gen;
  gen.seed = 5;
  const data::Dataset ds = data::C3OGenerator(gen).generate_algorithm("sgd", 6);
  std::vector<data::JobRun> runs = ds.runs();
  runs.resize(48);

  core::BellamyModel model(core::BellamyConfig{}, 21);
  core::PreTrainConfig pre;
  pre.epochs = 40;
  core::pretrain(model, ds.runs(), pre);

  const std::size_t budget = 12;
  const auto kept =
      reduce_runs(runs, config_of(ReductionPolicy::kLossAware, budget), &model);
  ASSERT_EQ(kept.size(), budget);

  // Expected: the budget runs with the largest |prediction - observed|.
  const std::vector<double> pred = model.predict_batch(runs);
  std::vector<std::size_t> order(runs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ea = std::abs(pred[a] - runs[a].runtime_s);
    const double eb = std::abs(pred[b] - runs[b].runtime_s);
    if (ea != eb) return ea > eb;
    return a < b;
  });
  std::vector<std::size_t> want(order.begin(),
                                order.begin() + static_cast<std::ptrdiff_t>(budget));
  std::sort(want.begin(), want.end());
  std::vector<data::JobRun> expected;
  for (const std::size_t i : want) expected.push_back(runs[i]);
  EXPECT_EQ(fingerprint(kept), fingerprint(expected));

  // No model: documented fallback to the uniform policy (same seed).
  const auto blind = reduce_runs(runs, config_of(ReductionPolicy::kLossAware, budget));
  const auto uniform = reduce_runs(runs, config_of(ReductionPolicy::kUniform, budget));
  EXPECT_EQ(fingerprint(blind), fingerprint(uniform));
}

TEST(ReductionPolicies, EmptyHistoryIsHandled) {
  for (const ReductionPolicy policy : kAllPolicies) {
    ReductionReport report;
    const auto kept = reduce_runs({}, config_of(policy, 8), nullptr, &report);
    EXPECT_TRUE(kept.empty());
    EXPECT_EQ(report.input_runs, 0u);
    EXPECT_DOUBLE_EQ(report.scaleout_coverage(), 1.0);
  }
}

}  // namespace
}  // namespace bellamy::reduce
