// DriftMonitor properties: the error EWMA matches the reference recurrence,
// stable traffic NEVER queues a refit, a degradation episode queues EXACTLY
// one (the latch), the latch re-arms only after recovery, and a triggered
// refit actually lands — through the entry's ReductionConfig when one is set.
//
// Episode tests use a zero-epoch fine-tune so the triggered refit hot-swaps
// BIT-IDENTICAL weights: predictions never move under the test's feet and
// the error sequence stays fully scripted.

#include "serve/drift_monitor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "serve/model_registry.hpp"

namespace bellamy::serve {
namespace {

struct Fixture {
  Fixture() {
    data::C3OGeneratorConfig cfg;
    cfg.seed = 77;
    ds = data::C3OGenerator(cfg).generate_algorithm("sgd", 4);
    core::PreTrainConfig pre;
    pre.epochs = 60;
    model = std::make_unique<core::BellamyModel>(core::BellamyConfig{}, 13);
    core::pretrain(*model, ds.runs(), pre);
    handle = registry.publish({"sgd", "drift"}, *model).unwrap();
  }

  /// A query run whose OBSERVED runtime is `factor` x the model's own
  /// prediction — factor 1.0 scripts a perfectly healthy cluster.
  data::JobRun observed(std::size_t i, double factor) {
    data::JobRun run = ds.runs()[i % ds.runs().size()];
    run.runtime_s = factor * model->predict_one(run);
    return run;
  }

  data::Dataset ds;
  std::unique_ptr<core::BellamyModel> model;
  ModelRegistry registry;
  ModelHandle handle;
};

/// Zero-epoch fine-tune: the swap installs bit-identical weights.
DriftOptions episode_options(double threshold) {
  DriftOptions options;
  options.ewma_alpha = 0.2;
  options.threshold = threshold;
  options.min_reports = 3;
  options.finetune.max_epochs = 0;
  options.finetune.mae_target_seconds = 0.0;
  return options;
}

/// Relative error the monitor computes for factor-x-prediction runs.
double scripted_error(double prediction, double factor) {
  const double obs = factor * prediction;
  return std::abs(prediction - obs) / std::max(std::abs(obs), 1.0);
}

TEST(DriftMonitor, UnknownAndUnreportedHandlesAreTyped) {
  Fixture fx;
  DriftMonitor monitor(fx.registry);
  const auto missing = monitor.report(ModelHandle{}, fx.ds.runs().front());
  EXPECT_EQ(missing.status(), ServeStatus::kUnknownModel);

  const DriftStats zero = monitor.stats(fx.handle);
  EXPECT_EQ(zero.reports, 0u);
  EXPECT_EQ(zero.refits, 0u);
  EXPECT_TRUE(zero.armed);
  EXPECT_TRUE(monitor.history(fx.handle).empty());
}

TEST(DriftMonitor, EwmaMatchesTheReferenceRecurrence) {
  Fixture fx;
  DriftOptions options;
  options.ewma_alpha = 0.25;
  DriftMonitor monitor(fx.registry, options);

  double want = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const double factor = 1.0 + 0.1 * static_cast<double>(i);
    const data::JobRun run = fx.observed(i, factor);
    const double err = scripted_error(fx.model->predict_one(run), factor);
    want = i == 0 ? err : options.ewma_alpha * err + (1.0 - options.ewma_alpha) * want;

    const auto obs = monitor.report(fx.handle, run);
    ASSERT_TRUE(obs.ok()) << obs.error_text();
    EXPECT_EQ(obs.value().reports, i + 1);
    EXPECT_NEAR(obs.value().error_ewma, want, 1e-12);
    EXPECT_FALSE(obs.value().refit_triggered);  // threshold 0 = monitor only
  }
  EXPECT_EQ(monitor.stats(fx.handle).refits, 0u);
}

TEST(DriftMonitor, StableTrafficNeverTriggers) {
  Fixture fx;
  DriftMonitor monitor(fx.registry, episode_options(0.25));
  const std::uint64_t stamp = fx.registry.state_stamp(fx.handle);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto obs = monitor.report(fx.handle, fx.observed(i, 1.0));
    ASSERT_TRUE(obs.ok()) << obs.error_text();
    EXPECT_FALSE(obs.value().refit_triggered) << "report " << i;
    EXPECT_NEAR(obs.value().error_ewma, 0.0, 1e-9);
  }
  const DriftStats stats = monitor.stats(fx.handle);
  EXPECT_EQ(stats.reports, 50u);
  EXPECT_EQ(stats.refits, 0u);
  EXPECT_TRUE(stats.armed);
  EXPECT_EQ(fx.registry.state_stamp(fx.handle), stamp) << "a stable handle was refit";
}

TEST(DriftMonitor, MonitorOnlyThresholdNeverTriggersUnderDegradation) {
  Fixture fx;
  DriftMonitor monitor(fx.registry, episode_options(0.0));  // 0 = monitor only
  for (std::size_t i = 0; i < 30; ++i) {
    const auto obs = monitor.report(fx.handle, fx.observed(i, 4.0));
    ASSERT_TRUE(obs.ok());
    EXPECT_FALSE(obs.value().refit_triggered);
    EXPECT_GT(obs.value().error_ewma, 0.5);
  }
  EXPECT_EQ(monitor.stats(fx.handle).refits, 0u);
}

TEST(DriftMonitor, TriggersExactlyOncePerEpisodeAndRearmsAfterRecovery) {
  Fixture fx;
  DriftMonitor monitor(fx.registry, episode_options(0.5));

  // Episode 1: 3x-off runtimes (relative error 2/3).  min_reports gates the
  // first two; the third crosses; every later degraded report is latched.
  std::size_t triggers = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto obs = monitor.report(fx.handle, fx.observed(i, 3.0));
    ASSERT_TRUE(obs.ok()) << obs.error_text();
    if (obs.value().refit_triggered) {
      triggers += 1;
      EXPECT_EQ(obs.value().reports, 3u) << "trigger before/after min_reports boundary";
    }
    if (i < 2) EXPECT_FALSE(obs.value().refit_triggered) << "min_reports ignored";
  }
  EXPECT_EQ(triggers, 1u);
  EXPECT_EQ(monitor.stats(fx.handle).refits, 1u);
  EXPECT_FALSE(monitor.stats(fx.handle).armed);

  // Recovery: healthy traffic decays the EWMA below the threshold and
  // re-arms the latch WITHOUT triggering anything.
  for (std::size_t i = 0; monitor.stats(fx.handle).armed == false; ++i) {
    ASSERT_LT(i, 50u) << "EWMA never recovered";
    const auto obs = monitor.report(fx.handle, fx.observed(i, 1.0));
    ASSERT_TRUE(obs.ok());
    EXPECT_FALSE(obs.value().refit_triggered);
  }
  EXPECT_EQ(monitor.stats(fx.handle).refits, 1u);

  // Episode 2: a fresh degradation fires exactly one more refit.
  triggers = 0;
  for (std::size_t i = 0; i < 30 && triggers == 0; ++i) {
    const auto obs = monitor.report(fx.handle, fx.observed(i, 3.0));
    ASSERT_TRUE(obs.ok());
    if (obs.value().refit_triggered) triggers += 1;
  }
  EXPECT_EQ(triggers, 1u);
  EXPECT_EQ(monitor.stats(fx.handle).refits, 2u);
}

TEST(DriftMonitor, HistoryIsBoundedToTheNewestRuns) {
  Fixture fx;
  DriftOptions options;
  options.history_limit = 5;
  DriftMonitor monitor(fx.registry, options);

  std::vector<double> runtimes;
  for (std::size_t i = 0; i < 12; ++i) {
    const data::JobRun run = fx.observed(i, 1.0 + 0.01 * static_cast<double>(i));
    runtimes.push_back(run.runtime_s);
    ASSERT_TRUE(monitor.report(fx.handle, run).ok());
  }
  const std::vector<data::JobRun> window = monitor.history(fx.handle);
  ASSERT_EQ(window.size(), 5u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].runtime_s, runtimes[runtimes.size() - 5 + i]) << i;
  }
}

TEST(DriftMonitor, TriggeredRefitLandsThroughTheEntrysReduction) {
  Fixture fx;

  reduce::ReductionConfig reduction;
  reduction.policy = reduce::ReductionPolicy::kCoverage;
  reduction.budget = 8;
  ASSERT_TRUE(fx.registry.set_reduction(fx.handle, reduction).ok());

  DriftOptions options = episode_options(0.5);
  options.finetune.max_epochs = 5;  // a real (tiny) fine-tune this time
  options.finetune.patience = 100;
  options.min_reports = 12;  // trigger only once the window exceeds the budget
  DriftMonitor monitor(fx.registry, options);

  const std::uint64_t stamp = fx.registry.state_stamp(fx.handle);
  bool triggered = false;
  for (std::size_t i = 0; i < 20 && !triggered; ++i) {
    const auto obs = monitor.report(fx.handle, fx.observed(i, 3.0));
    ASSERT_TRUE(obs.ok()) << obs.error_text();
    triggered = obs.value().refit_triggered;
  }
  ASSERT_TRUE(triggered);

  // The refit runs on a background strand: poll (bounded) for the swap.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fx.registry.reduction_counters(fx.handle).first == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "drift refit never landed";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(fx.registry.state_stamp(fx.handle), stamp);

  const reduce::ReductionReport report = fx.registry.last_reduction(fx.handle);
  EXPECT_EQ(report.policy, reduce::ReductionPolicy::kCoverage);
  EXPECT_LE(report.kept_runs, reduction.budget);
  EXPECT_GT(report.input_runs, report.kept_runs);
  EXPECT_EQ(fx.registry.reduction_counters(fx.handle).second, report.dropped_runs);
}

TEST(DriftMonitor, AnnotateCopiesCountersIntoMetrics) {
  Fixture fx;
  DriftMonitor monitor(fx.registry, episode_options(0.0));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(monitor.report(fx.handle, fx.observed(i, 2.0)).ok());
  }

  ServeMetrics metrics;
  metrics.requests = 123;  // annotate must leave serving counters alone
  monitor.annotate(fx.handle, metrics);
  EXPECT_EQ(metrics.requests, 123u);
  EXPECT_EQ(metrics.drift_reports, 4u);
  EXPECT_EQ(metrics.drift_refits, 0u);
  EXPECT_GT(metrics.drift_error_ewma, 0.0);
}

}  // namespace
}  // namespace bellamy::serve
