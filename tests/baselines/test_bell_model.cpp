#include "baselines/bell_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bellamy::baselines {
namespace {

data::JobRun run_at(int x, double rt) {
  data::JobRun r;
  r.algorithm = "sgd";
  r.scale_out = x;
  r.runtime_s = rt;
  return r;
}

TEST(InterpolationModel, ExactAtKnots) {
  InterpolationModel m;
  m.fit({run_at(2, 100.0), run_at(4, 60.0), run_at(8, 40.0)});
  EXPECT_DOUBLE_EQ(m.predict_scaleout(2.0), 100.0);
  EXPECT_DOUBLE_EQ(m.predict_scaleout(4.0), 60.0);
  EXPECT_DOUBLE_EQ(m.predict_scaleout(8.0), 40.0);
}

TEST(InterpolationModel, LinearBetweenKnots) {
  InterpolationModel m;
  m.fit({run_at(2, 100.0), run_at(4, 60.0)});
  EXPECT_DOUBLE_EQ(m.predict_scaleout(3.0), 80.0);
}

TEST(InterpolationModel, AveragesRepetitionsPerScaleOut) {
  InterpolationModel m;
  m.fit({run_at(2, 90.0), run_at(2, 110.0), run_at(4, 60.0)});
  EXPECT_DOUBLE_EQ(m.predict_scaleout(2.0), 100.0);
}

TEST(InterpolationModel, ExtrapolatesBoundarySegments) {
  InterpolationModel m;
  m.fit({run_at(2, 100.0), run_at(4, 60.0), run_at(6, 50.0)});
  // Left: slope -20/unit from (2,100)-(4,60).
  EXPECT_DOUBLE_EQ(m.predict_scaleout(1.0), 120.0);
  // Right: slope -5/unit from (4,60)-(6,50).
  EXPECT_DOUBLE_EQ(m.predict_scaleout(8.0), 40.0);
}

TEST(InterpolationModel, NeedsTwoDistinctScaleOuts) {
  InterpolationModel m;
  EXPECT_THROW(m.fit({run_at(2, 100.0), run_at(2, 90.0)}), std::invalid_argument);
}

TEST(InterpolationModel, PredictBeforeFitThrows) {
  InterpolationModel m;
  EXPECT_THROW(m.predict_scaleout(2.0), std::runtime_error);
}

TEST(BellModel, RequiresThreePoints) {
  BellModel m;
  EXPECT_EQ(m.min_training_points(), 3u);
  EXPECT_THROW(m.fit({run_at(2, 1.0), run_at(4, 2.0)}), std::invalid_argument);
}

TEST(BellModel, SelectsParametricOnErnestShapedData) {
  // Sparse Ernest-family data with a strong 1/x component: the parametric
  // model generalizes better in leave-one-out CV.
  std::vector<data::JobRun> runs;
  for (int x : {2, 4, 8, 12}) {
    const double rt = 20.0 + 600.0 / x + 3.0 * std::log(static_cast<double>(x)) + 1.0 * x;
    runs.push_back(run_at(x, rt));
  }
  BellModel m;
  m.fit(runs);
  EXPECT_EQ(m.selected(), "parametric");
  EXPECT_NEAR(m.predict(run_at(6, 0.0)),
              20.0 + 100.0 + 3.0 * std::log(6.0) + 6.0, 5.0);
}

TEST(BellModel, SelectsNonParametricOnDenseIrregularData) {
  // A shape outside the Ernest family (plateau then cliff) with dense
  // sampling: interpolation wins.
  std::vector<data::JobRun> runs;
  for (int x = 2; x <= 20; x += 2) {
    const double rt = x <= 10 ? 100.0 : 100.0 - 15.0 * (x - 10);
    runs.push_back(run_at(x, rt));
    runs.push_back(run_at(x, rt + 1.0));
  }
  BellModel m;
  m.fit(runs);
  EXPECT_EQ(m.selected(), "non-parametric");
  // Knot means: x=10 -> 100.5, x=12 -> 70.5; interpolation at 11 -> 85.5.
  EXPECT_NEAR(m.predict(run_at(11, 0.0)), 85.5, 5.0);
}

TEST(BellModel, PredictionsFollowSelectedModel) {
  std::vector<data::JobRun> runs{run_at(2, 100.0), run_at(4, 60.0), run_at(8, 45.0),
                                 run_at(12, 40.0)};
  BellModel m;
  m.fit(runs);
  // Whatever was selected, in-sample predictions stay near the data.
  for (const auto& r : runs) {
    EXPECT_NEAR(m.predict(r), r.runtime_s, 20.0);
  }
}

TEST(BellModel, NameIsBell) {
  BellModel m;
  EXPECT_EQ(m.name(), "Bell");
}

TEST(BellModel, HandlesRepeatedScaleOutsInCv) {
  // All repetitions concentrated on few distinct scale-outs must not crash
  // the internal leave-one-out loop.
  std::vector<data::JobRun> runs{run_at(2, 100.0), run_at(2, 104.0), run_at(6, 50.0),
                                 run_at(6, 52.0),  run_at(10, 40.0), run_at(10, 41.0)};
  BellModel m;
  EXPECT_NO_THROW(m.fit(runs));
  EXPECT_GT(m.predict(run_at(4, 0.0)), 0.0);
}

}  // namespace
}  // namespace bellamy::baselines
