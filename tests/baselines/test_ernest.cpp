#include "baselines/ernest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/c3o_generator.hpp"
#include "util/rng.hpp"

namespace bellamy::baselines {
namespace {

data::JobRun run_at(int x, double rt) {
  data::JobRun r;
  r.algorithm = "sgd";
  r.scale_out = x;
  r.runtime_s = rt;
  return r;
}

std::vector<data::JobRun> from_theta(const std::array<double, 4>& theta,
                                     const std::vector<int>& xs) {
  std::vector<data::JobRun> runs;
  for (int x : xs) {
    const double xd = x;
    runs.push_back(run_at(
        x, theta[0] + theta[1] / xd + theta[2] * std::log(xd) + theta[3] * xd));
  }
  return runs;
}

TEST(ErnestFeatures, Values) {
  const auto f = ernest_features(4.0);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 0.25);
  EXPECT_NEAR(f[2], std::log(4.0), 1e-15);
  EXPECT_DOUBLE_EQ(f[3], 4.0);
}

TEST(ErnestFeatures, RejectsScaleOutBelowOne) {
  EXPECT_THROW(ernest_features(0.5), std::invalid_argument);
}

TEST(Ernest, RecoversGeneratingTheta) {
  const std::array<double, 4> theta{20.0, 400.0, 8.0, 2.0};
  ErnestModel model;
  model.fit(from_theta(theta, {2, 4, 6, 8, 10, 12}));
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(model.theta()[j], theta[j], 1e-6);
}

TEST(Ernest, PredictsTrainingPointsExactly) {
  const std::array<double, 4> theta{10.0, 300.0, 4.0, 1.0};
  const auto runs = from_theta(theta, {2, 6, 10});
  ErnestModel model;
  model.fit(runs);
  for (const auto& r : runs) {
    EXPECT_NEAR(model.predict(r), r.runtime_s, 1e-6);
  }
}

TEST(Ernest, InterpolatesNoiseFreeCurve) {
  const std::array<double, 4> theta{15.0, 500.0, 3.0, 1.2};
  ErnestModel model;
  model.fit(from_theta(theta, {2, 4, 8, 12}));
  const double expect = theta[0] + theta[1] / 6.0 + theta[2] * std::log(6.0) + theta[3] * 6.0;
  EXPECT_NEAR(model.predict_scaleout(6.0), expect, 1e-6);
}

TEST(Ernest, ThetaIsNonNegative) {
  // Even on pathological decreasing-then-flat data, theta stays >= 0.
  ErnestModel model;
  model.fit({run_at(2, 100.0), run_at(4, 10.0), run_at(6, 200.0), run_at(8, 5.0)});
  for (double t : model.theta()) EXPECT_GE(t, 0.0);
}

TEST(Ernest, SinglePointFitIsDefined) {
  // Paper: "using NNLS with just one data point is by design unreasonable" —
  // but it must still produce a usable (if poor) model.
  ErnestModel model;
  model.fit({run_at(4, 120.0)});
  EXPECT_NEAR(model.predict_scaleout(4.0), 120.0, 1e-6);
  EXPECT_GE(model.predict_scaleout(8.0), 0.0);
}

TEST(Ernest, EmptyFitThrows) {
  ErnestModel model;
  EXPECT_THROW(model.fit({}), std::invalid_argument);
}

TEST(Ernest, PredictBeforeFitThrows) {
  ErnestModel model;
  EXPECT_THROW(model.predict_scaleout(4.0), std::runtime_error);
  EXPECT_THROW(model.predict_batch({data::JobRun{}}), std::runtime_error);
  // An empty batch needs no fitted state.
  EXPECT_TRUE(model.predict_batch({}).empty());
}

TEST(Ernest, MinTrainingPointsIsOne) {
  ErnestModel model;
  EXPECT_EQ(model.min_training_points(), 1u);
  EXPECT_EQ(model.name(), "NNLS");
}

TEST(Ernest, ReasonableOnGeneratedContext) {
  // Fit on all points of one synthetic context; in-sample MRE should be low
  // because the generator's curves come from the same family.
  const auto ds = data::C3OGenerator().generate_algorithm("grep", 1);
  const auto group = ds.contexts().front();
  ErnestModel model;
  model.fit(group.runs);
  double mre = 0.0;
  for (const auto& r : group.runs) {
    mre += std::abs(model.predict(r) - r.runtime_s) / r.runtime_s;
  }
  mre /= static_cast<double>(group.runs.size());
  EXPECT_LT(mre, 0.15);
}

TEST(Ernest, RepeatedFitOverwritesState) {
  ErnestModel model;
  model.fit(from_theta({10.0, 100.0, 0.0, 0.0}, {2, 4, 6, 8}));
  const double before = model.predict_scaleout(5.0);
  model.fit(from_theta({50.0, 100.0, 0.0, 0.0}, {2, 4, 6, 8}));
  EXPECT_NEAR(model.predict_scaleout(5.0), before + 40.0, 1e-6);
}

}  // namespace
}  // namespace bellamy::baselines
