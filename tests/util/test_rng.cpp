#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bellamy::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntThrowsOnInvertedBounds) {
  Rng rng(12);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(14);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalPositive) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleChangesOrder) {
  Rng rng(18);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity permutation ~ 1/100!
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (auto i : uniq) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(20);
  const auto s = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq, (std::set<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleWithoutReplacementThrowsWhenKTooLarge) {
  Rng rng(21);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ForkIndependence) {
  Rng parent(22);
  Rng child = parent.fork();
  // Child and parent produce different streams.
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.next() != child.next()) ++differing;
  }
  EXPECT_GT(differing, 45);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference values from the SplitMix64 algorithm with seed 0.
  std::uint64_t state = 0;
  const auto v1 = splitmix64(state);
  const auto v2 = splitmix64(state);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(state, 2 * 0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace bellamy::util
