#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bellamy::util {
namespace {

TEST(Csv, ParseSimple) {
  std::istringstream in("a,b,c\n1,2,3\n4,5,6\n");
  const auto t = read_csv(in);
  ASSERT_EQ(t.header.size(), 3u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][1], "2");
  EXPECT_EQ(t.rows[1][2], "6");
}

TEST(Csv, ColumnLookup) {
  std::istringstream in("x,y\n1,2\n");
  const auto t = read_csv(in);
  EXPECT_EQ(t.column("y"), 1u);
  EXPECT_THROW(t.column("z"), std::out_of_range);
}

TEST(Csv, QuotedFieldWithDelimiter) {
  std::istringstream in("a,b\n\"1,5\",2\n");
  const auto t = read_csv(in);
  EXPECT_EQ(t.rows[0][0], "1,5");
}

TEST(Csv, QuotedFieldWithEscapedQuote) {
  std::istringstream in("a\n\"say \"\"hi\"\"\"\n");
  const auto t = read_csv(in);
  EXPECT_EQ(t.rows[0][0], "say \"hi\"");
}

TEST(Csv, QuotedFieldWithNewline) {
  std::istringstream in("a,b\n\"line1\nline2\",x\n");
  const auto t = read_csv(in);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "line1\nline2");
}

TEST(Csv, CrLfHandled) {
  std::istringstream in("a,b\r\n1,2\r\n");
  const auto t = read_csv(in);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(Csv, RowWidthMismatchThrows) {
  std::istringstream in("a,b\n1,2,3\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(Csv, UnterminatedQuoteThrows) {
  std::istringstream in("a\n\"oops\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(Csv, NoHeaderMode) {
  std::istringstream in("1,2\n3,4\n");
  const auto t = read_csv(in, ',', /*has_header=*/false);
  EXPECT_TRUE(t.header.empty());
  ASSERT_EQ(t.rows.size(), 2u);
}

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("plain"), "plain");
}

TEST(Csv, EscapeQuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("he said \"x\""), "\"he said \"\"x\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, RoundTrip) {
  CsvTable t;
  t.header = {"name", "value"};
  t.rows = {{"plain", "1"}, {"with,comma", "2"}, {"with\"quote", "3"}, {"multi\nline", "4"}};
  std::ostringstream out;
  write_csv(out, t);
  std::istringstream in(out.str());
  const auto back = read_csv(in);
  EXPECT_EQ(back.header, t.header);
  EXPECT_EQ(back.rows, t.rows);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv"), std::runtime_error);
}

}  // namespace
}  // namespace bellamy::util
