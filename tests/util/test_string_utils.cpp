#include "util/string_utils.hpp"

#include <gtest/gtest.h>

#include "util/hash.hpp"

namespace bellamy::util {
namespace {

TEST(StringUtils, ToLower) {
  EXPECT_EQ(to_lower("M4.2xLARGE"), "m4.2xlarge");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtils, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtils, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "-"), "x-y-z");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(StringUtils, IsUnsignedInteger) {
  EXPECT_TRUE(is_unsigned_integer("0"));
  EXPECT_TRUE(is_unsigned_integer("19353"));
  EXPECT_FALSE(is_unsigned_integer(""));
  EXPECT_FALSE(is_unsigned_integer("-3"));
  EXPECT_FALSE(is_unsigned_integer("3.5"));
  EXPECT_FALSE(is_unsigned_integer("12a"));
}

TEST(StringUtils, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e3 "), -2000.0);
  EXPECT_THROW(parse_double("abc"), std::invalid_argument);
  EXPECT_THROW(parse_double("1.5x"), std::invalid_argument);
}

TEST(StringUtils, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_THROW(parse_int("4.2"), std::invalid_argument);
  EXPECT_THROW(parse_int(""), std::invalid_argument);
}

TEST(StringUtils, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format("%.2f", 1.239), "1.24");
}

TEST(Hash, Fnv1a64KnownValues) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, Fnv1a64Deterministic) {
  EXPECT_EQ(fnv1a64("m4.2xlarge"), fnv1a64("m4.2xlarge"));
  EXPECT_NE(fnv1a64("m4.2xlarge"), fnv1a64("r4.2xlarge"));
}

}  // namespace
}  // namespace bellamy::util
