#include "util/retry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace bellamy::util {
namespace {

using std::chrono::milliseconds;

std::vector<milliseconds> drain(const RetryPolicy& policy) {
  RetrySchedule schedule(policy);
  std::vector<milliseconds> delays;
  milliseconds delay{0};
  while (schedule.next_delay(delay)) delays.push_back(delay);
  return delays;
}

TEST(Retry, AttemptBudgetIsTotalTriesIncludingTheFirst) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  EXPECT_EQ(drain(policy).size(), 3u);  // 1 free try + 3 retries

  policy.max_attempts = 1;
  EXPECT_TRUE(drain(policy).empty());  // single-shot: no retries at all
}

TEST(Retry, SameSeedReplaysTheExactDelaySequence) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.jitter_seed = 42;
  EXPECT_EQ(drain(policy), drain(policy));

  RetryPolicy other = policy;
  other.jitter_seed = 43;
  EXPECT_NE(drain(policy), drain(other));
}

TEST(Retry, DelaysStayInsideTheJitterBand) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = milliseconds(100);
  policy.multiplier = 2.0;
  policy.max_backoff = milliseconds(10000);
  policy.jitter = 0.25;

  const auto delays = drain(policy);
  ASSERT_EQ(delays.size(), 4u);
  double backoff = 100.0;
  for (const milliseconds delay : delays) {
    EXPECT_GE(delay.count(), static_cast<std::int64_t>(backoff * 0.75) - 1);
    EXPECT_LE(delay.count(), static_cast<std::int64_t>(backoff));
    backoff *= 2.0;
  }
}

TEST(Retry, BackoffIsCappedAtMaxBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = milliseconds(100);
  policy.multiplier = 10.0;
  policy.max_backoff = milliseconds(500);
  policy.jitter = 0.0;  // exact values

  const auto delays = drain(policy);
  ASSERT_EQ(delays.size(), 9u);
  EXPECT_EQ(delays.front(), milliseconds(100));
  for (std::size_t i = 1; i < delays.size(); ++i) {
    EXPECT_EQ(delays[i], milliseconds(500));
  }
}

TEST(Retry, RetriesUsedCounts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetrySchedule schedule(policy);
  EXPECT_EQ(schedule.retries_used(), 0);
  milliseconds delay{0};
  ASSERT_TRUE(schedule.next_delay(delay));
  EXPECT_EQ(schedule.retries_used(), 1);
  ASSERT_TRUE(schedule.next_delay(delay));
  EXPECT_EQ(schedule.retries_used(), 2);
  EXPECT_FALSE(schedule.next_delay(delay));
}

}  // namespace
}  // namespace bellamy::util
