#include "util/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace bellamy::util {
namespace {

using State = CircuitBreaker::State;
using Clock = CircuitBreaker::Clock;

/// Breaker on a hand-cranked clock: cooldowns elapse by advancing `now`,
/// never by sleeping.
struct FakeClockBreaker {
  explicit FakeClockBreaker(CircuitBreakerOptions options) : breaker(options) {
    breaker.set_time_source([this] { return now; });
  }
  void advance(std::chrono::milliseconds by) { now += by; }

  Clock::time_point now = Clock::time_point{} + std::chrono::hours(1);
  CircuitBreaker breaker;
};

CircuitBreakerOptions two_strikes() {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.cooldown = std::chrono::milliseconds(1000);
  return options;
}

TEST(CircuitBreaker, ClosedPassesEverythingThrough) {
  FakeClockBreaker t(two_strikes());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(t.breaker.allow());
    t.breaker.record_success();
  }
  EXPECT_EQ(t.breaker.state(), State::kClosed);
  EXPECT_EQ(t.breaker.counters().rejected, 0u);
}

TEST(CircuitBreaker, TripsOpenAfterConsecutiveFailures) {
  FakeClockBreaker t(two_strikes());
  ASSERT_TRUE(t.breaker.allow());
  t.breaker.record_failure();
  EXPECT_EQ(t.breaker.state(), State::kClosed);  // one strike is not enough
  ASSERT_TRUE(t.breaker.allow());
  t.breaker.record_failure();
  EXPECT_EQ(t.breaker.state(), State::kOpen);
  EXPECT_EQ(t.breaker.counters().trips, 1u);

  // While open (cooldown not elapsed) every call is rejected instantly.
  EXPECT_FALSE(t.breaker.allow());
  EXPECT_FALSE(t.breaker.allow());
  EXPECT_EQ(t.breaker.counters().rejected, 2u);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  FakeClockBreaker t(two_strikes());
  ASSERT_TRUE(t.breaker.allow());
  t.breaker.record_failure();
  ASSERT_TRUE(t.breaker.allow());
  t.breaker.record_success();  // streak broken
  ASSERT_TRUE(t.breaker.allow());
  t.breaker.record_failure();
  EXPECT_EQ(t.breaker.state(), State::kClosed);
}

TEST(CircuitBreaker, CooldownAdmitsExactlyOneProbe) {
  FakeClockBreaker t(two_strikes());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(t.breaker.allow());
    t.breaker.record_failure();
  }
  ASSERT_EQ(t.breaker.state(), State::kOpen);

  t.advance(std::chrono::milliseconds(999));
  EXPECT_FALSE(t.breaker.allow());  // one ms early: still open

  t.advance(std::chrono::milliseconds(1));
  EXPECT_TRUE(t.breaker.allow());  // THE probe
  EXPECT_EQ(t.breaker.state(), State::kHalfOpen);
  EXPECT_FALSE(t.breaker.allow());  // everyone else keeps being rejected
  EXPECT_EQ(t.breaker.counters().probes, 1u);

  t.breaker.record_success();
  EXPECT_EQ(t.breaker.state(), State::kClosed);
  EXPECT_TRUE(t.breaker.allow());
}

TEST(CircuitBreaker, FailedProbeReopensAndRestartsTheCooldown) {
  FakeClockBreaker t(two_strikes());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(t.breaker.allow());
    t.breaker.record_failure();
  }
  t.advance(std::chrono::milliseconds(1000));
  ASSERT_TRUE(t.breaker.allow());  // probe admitted
  t.breaker.record_failure();      // still dead
  EXPECT_EQ(t.breaker.state(), State::kOpen);
  EXPECT_EQ(t.breaker.counters().trips, 2u);

  // The cooldown restarted at the failed probe, not at the original trip.
  t.advance(std::chrono::milliseconds(999));
  EXPECT_FALSE(t.breaker.allow());
  t.advance(std::chrono::milliseconds(1));
  EXPECT_TRUE(t.breaker.allow());
  t.breaker.record_success();
  EXPECT_EQ(t.breaker.state(), State::kClosed);
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_STREQ(to_string(State::kClosed), "closed");
  EXPECT_STREQ(to_string(State::kOpen), "open");
  EXPECT_STREQ(to_string(State::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace bellamy::util
