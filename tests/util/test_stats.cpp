#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bellamy::util {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceSingleElementZero) {
  const std::vector<double> xs{3.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, StddevIsSqrtVariance) {
  const std::vector<double> xs{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs) * stddev(xs), variance(xs));
}

TEST(Stats, MedianOdd) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, MedianEven) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 30.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, PercentileThrowsOutOfRange) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Stats, CoeffOfVariation) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(coeff_of_variation(xs), 0.0);
  const std::vector<double> ys{1.0, 3.0};
  EXPECT_NEAR(coeff_of_variation(ys), stddev(ys) / 2.0, 1e-12);
}

TEST(Stats, EcdfAtThresholds) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ts{0.0, 2.0, 2.5, 10.0};
  const auto probs = ecdf(xs, ts);
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_DOUBLE_EQ(probs[0], 0.0);
  EXPECT_DOUBLE_EQ(probs[1], 0.5);
  EXPECT_DOUBLE_EQ(probs[2], 0.5);
  EXPECT_DOUBLE_EQ(probs[3], 1.0);
}

TEST(Stats, EcdfStepsCollapseDuplicates) {
  const std::vector<double> xs{1.0, 1.0, 2.0};
  const auto steps = ecdf_steps(xs);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].first, 1.0);
  EXPECT_NEAR(steps[0].second, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(steps[1].first, 2.0);
  EXPECT_DOUBLE_EQ(steps[1].second, 1.0);
}

TEST(Stats, MinMaxNormalize) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  const auto normed = min_max_normalize(xs);
  EXPECT_DOUBLE_EQ(normed[0], 0.0);
  EXPECT_DOUBLE_EQ(normed[1], 0.5);
  EXPECT_DOUBLE_EQ(normed[2], 1.0);
}

TEST(Stats, MinMaxNormalizeConstantInput) {
  const std::vector<double> xs{5.0, 5.0};
  const auto normed = min_max_normalize(xs);
  EXPECT_DOUBLE_EQ(normed[0], 0.0);
  EXPECT_DOUBLE_EQ(normed[1], 0.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, -2.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace bellamy::util
