#include "parallel/strand.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace bellamy::parallel {
namespace {

TEST(Strand, RunsTasksInPostOrderWithoutOverlap) {
  ThreadPool pool(4);
  Strand strand(pool);

  // No synchronization inside the tasks: the strand's mutual exclusion is
  // the only thing keeping this vector consistent — TSan/ASan would flag a
  // violation, and out-of-order execution breaks the content check.
  std::vector<int> order;
  std::atomic<int> active{0};
  std::atomic<bool> overlapped{false};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    strand.post([&, i] {
      if (active.fetch_add(1) != 0) overlapped.store(true);
      order.push_back(i);
      active.fetch_sub(1);
    });
  }
  strand.wait_idle();

  EXPECT_FALSE(overlapped.load());
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(strand.depth(), 0u);
}

TEST(Strand, IndependentStrandsProgressConcurrently) {
  ThreadPool pool(4);
  Strand a(pool);
  Strand b(pool);

  // a's first task blocks until b has demonstrably run — if strands shared
  // one serial queue this would deadlock (caught by the test timeout).
  std::atomic<bool> b_ran{false};
  std::atomic<bool> a_ran{false};
  a.post([&] {
    while (!b_ran.load()) std::this_thread::yield();
    a_ran.store(true);
  });
  b.post([&] { b_ran.store(true); });
  a.wait_idle();
  b.wait_idle();
  EXPECT_TRUE(a_ran.load());
}

TEST(Strand, TasksMayPostFollowUpsOntoTheirOwnStrand) {
  ThreadPool pool(2);
  Strand strand(pool);
  std::vector<int> order;
  strand.post([&] {
    order.push_back(1);
    strand.post([&] { order.push_back(3); });
    order.push_back(2);
  });
  strand.wait_idle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(Strand, WaitIdleFromAPoolWorkerHelpsInsteadOfDeadlocking) {
  ThreadPool pool(1);  // a single worker forces the helping path
  Strand strand(pool);
  std::atomic<int> ran{0};
  // The outer task occupies the pool's only worker, then waits for strand
  // work that can only run if the waiter helps drain the pool queue.
  auto outer = pool.submit([&] {
    strand.post([&] { ran.fetch_add(1); });
    strand.post([&] { ran.fetch_add(1); });
    strand.wait_idle();
  });
  outer.get();
  EXPECT_EQ(ran.load(), 2);
}

// Regression: the FINAL task's closure may hold the last reference to the
// strand's owner (serve: a registry entry erased while a refit was in
// flight).  The closure dies inside drain(), running ~Owner -> ~Strand ->
// wait_idle() on the pool worker INSIDE the strand's own loop; before the
// retire-before-destroy ordering + re-entry guard this spun the worker
// forever and the pool destructor below never joined (test times out).
TEST(Strand, FinalTaskClosureOwningTheStrandDoesNotWedgeTheWorker) {
  ThreadPool pool(1);
  struct Owner {
    explicit Owner(ThreadPool& p) : strand(p) {}
    Strand strand;
  };
  std::atomic<bool> ran{false};
  auto owner = std::make_shared<Owner>(pool);
  owner->strand.post([owner, &ran] { ran.store(true); });
  owner.reset();  // the queued closure now owns the Owner (and its Strand)
  while (!ran.load()) std::this_thread::yield();
  // ~ThreadPool at scope exit must join cleanly: a wedged worker hangs here.
}

TEST(Strand, DestructorDrainsPostedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    Strand strand(pool);
    for (int i = 0; i < 32; ++i) {
      strand.post([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
  }  // ~Strand waits for all 32
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace bellamy::parallel
