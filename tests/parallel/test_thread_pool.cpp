#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bellamy::parallel {
namespace {

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExecutesManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PassesArguments) {
  ThreadPool pool(1);
  auto f = pool.submit([](int a, int b) { return a + b; }, 3, 4);
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int prev = max_in_flight.load();
      while (prev < now && !max_in_flight.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      in_flight.fetch_sub(1);
    }));
  }
  for (auto& f : futures) f.get();
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_GE(max_in_flight.load(), 1);
  }
  EXPECT_EQ(in_flight.load(), 0);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins workers after queue drains
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, TryRunPendingTaskFromExternalThread) {
  // Any thread may help: an external (non-worker) caller claims through the
  // injection stripes and the workers' deques as a pure thief.
  ThreadPool pool(1);
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release{false};
  pool.submit([&] {  // occupy the only worker
    blocker_started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  // Wait until the WORKER holds the blocker — otherwise this thread's
  // helping loop below would claim it first (stripe FIFO) and spin on a
  // release flag only set after the loop.
  while (!blocker_started.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  while (pool.try_run_pending_task()) {
  }
  EXPECT_EQ(ran.load(), 4);  // helper drained everything the worker couldn't
  release.store(true);
  pool.wait_idle();
}

// REGRESSION (wait_idle vs helping claims).  The mutex-queue pool tracked
// idleness as "queue empty && active == 0", where a helping thread bumped
// `active` in a separate critical section from its pop: wait_idle could
// observe the window where a task was already CLAIMED by a helper (queue
// empty) but not yet COUNTED (active still 0) and return while the task was
// running.  The work-stealing pool counts a task as pending_ from before it
// becomes claimable until after its body returns, no matter which thread
// runs it.  Reintroducing the two-phase accounting makes this test fail:
// wait_idle would return with `done` still false while the helper sleeps
// inside the task.
TEST(ThreadPool, WaitIdleSeesTaskClaimedByExternalHelper) {
  ThreadPool pool(1);
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> worker_release{false};
  pool.submit([&] {  // park the only worker in a task
    blocker_started.store(true);
    while (!worker_release.load()) std::this_thread::yield();
  });
  // The helper below must claim the SLEEPER, not the blocker: wait until
  // the worker owns the blocker before submitting anything else.
  while (!blocker_started.load()) std::this_thread::yield();

  std::atomic<bool> claimed{false};
  std::atomic<bool> done{false};
  pool.submit([&claimed, &done] {
    claimed.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    done.store(true);
  });

  // External helper claims the second task (the worker is occupied).
  std::thread helper([&pool] { pool.try_run_pending_task(); });
  while (!claimed.load()) std::this_thread::yield();

  // The helper is now INSIDE the task, both queues are empty.  wait_idle
  // must still block until the claimed task's body finishes.
  worker_release.store(true);
  pool.wait_idle();
  EXPECT_TRUE(done.load())
      << "wait_idle returned while a helper-claimed task was still running";
  helper.join();
}

TEST(ThreadPool, ExternalSubmittersFromManyThreadsRunExactlyOnce) {
  // Hammers the striped injection path: 8 submitter threads, one pool.
  ThreadPool pool(4);
  constexpr int kPerThread = 500;
  constexpr int kThreads = 8;
  std::vector<std::atomic<std::uint8_t>> ran(kThreads * kPerThread);
  for (auto& r : ran) r.store(0);
  std::vector<std::thread> submitters;
  std::atomic<int> double_runs{0};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int id = t * kPerThread + i;
        pool.submit([&, id] {
          if (ran[static_cast<std::size_t>(id)].fetch_add(1) != 0) {
            double_runs.fetch_add(1);
          }
        });
      }
    });
  }
  for (auto& s : submitters) s.join();
  pool.wait_idle();
  EXPECT_EQ(double_runs.load(), 0);
  int executed = 0;
  for (auto& r : ran) executed += r.load();
  EXPECT_EQ(executed, kThreads * kPerThread);
}

TEST(ThreadPool, WorkerRecursiveSubmitCompletesOnSingleWorker) {
  // A task submitting from inside the pool pushes lock-free onto its own
  // deque; with one worker nobody can steal, so the owner itself must pop
  // the children (LIFO) before it can go idle.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::function<void(int)> spawn = [&](int depth) {
    ran.fetch_add(1);
    if (depth > 0) {
      pool.submit(spawn, depth - 1);
      pool.submit(spawn, depth - 1);
    }
  };
  pool.submit(spawn, 6).get();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), (1 << 7) - 1);  // full binary tree of depth 6
}

}  // namespace
}  // namespace bellamy::parallel
