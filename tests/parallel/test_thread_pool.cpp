#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace bellamy::parallel {
namespace {

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExecutesManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PassesArguments) {
  ThreadPool pool(1);
  auto f = pool.submit([](int a, int b) { return a + b; }, 3, 4);
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int prev = max_in_flight.load();
      while (prev < now && !max_in_flight.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      in_flight.fetch_sub(1);
    }));
  }
  for (auto& f : futures) f.get();
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_GE(max_in_flight.load(), 1);
  }
  EXPECT_EQ(in_flight.load(), 0);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins workers after queue drains
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace bellamy::parallel
