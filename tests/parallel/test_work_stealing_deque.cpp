// Unit and race tests for the Chase–Lev deque under ThreadPool.
//
// The deque's contract is exactly-once claiming: every pushed element is
// returned by precisely one successful pop() or steal(), under any
// interleaving of one owner and any number of thieves, across grows.  The
// soak here is the primitive-level half of the certification; the pool-level
// half lives in test_pool_stress.cpp.

#include "parallel/work_stealing_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace bellamy::parallel {
namespace {

using Deque = WorkStealingDeque<std::size_t>;  // 0 is the empty sentinel

TEST(WorkStealingDeque, OwnerPushPopIsLifo) {
  Deque dq;
  for (std::size_t v = 1; v <= 100; ++v) dq.push(v);
  EXPECT_EQ(dq.size_approx(), 100u);
  for (std::size_t v = 100; v >= 1; --v) EXPECT_EQ(dq.pop(), v);
  EXPECT_EQ(dq.pop(), 0u);
  EXPECT_TRUE(dq.empty_approx());
}

TEST(WorkStealingDeque, StealIsFifoFromTop) {
  Deque dq;
  for (std::size_t v = 1; v <= 100; ++v) dq.push(v);
  // Thieves always take the OLDEST element: steal order is push order.
  for (std::size_t v = 1; v <= 100; ++v) EXPECT_EQ(dq.steal(), v);
  EXPECT_EQ(dq.steal(), 0u);
}

TEST(WorkStealingDeque, MixedPopAndStealPartitionTheElements) {
  Deque dq;
  for (std::size_t v = 1; v <= 10; ++v) dq.push(v);
  EXPECT_EQ(dq.steal(), 1u);  // oldest
  EXPECT_EQ(dq.pop(), 10u);   // newest
  EXPECT_EQ(dq.steal(), 2u);
  EXPECT_EQ(dq.pop(), 9u);
  EXPECT_EQ(dq.size_approx(), 6u);
}

TEST(WorkStealingDeque, EmptyDequeReturnsSentinelFromBothEnds) {
  Deque dq;
  EXPECT_EQ(dq.pop(), 0u);
  EXPECT_EQ(dq.steal(), 0u);
  dq.push(7);
  EXPECT_EQ(dq.pop(), 7u);
  EXPECT_EQ(dq.pop(), 0u);
  EXPECT_EQ(dq.steal(), 0u);
}

TEST(WorkStealingDeque, GrowPreservesContents) {
  Deque dq(/*capacity=*/2);
  for (std::size_t v = 1; v <= 1000; ++v) dq.push(v);  // forces ~9 doublings
  EXPECT_GE(dq.capacity(), 1024u);
  for (std::size_t v = 1; v <= 500; ++v) EXPECT_EQ(dq.steal(), v);
  for (std::size_t v = 1000; v >= 501; --v) EXPECT_EQ(dq.pop(), v);
  EXPECT_TRUE(dq.empty_approx());
}

// One element, one owner popping, one thief stealing, repeated: exactly one
// side wins each round.  This is the t == b CAS race at the heart of the
// algorithm.
TEST(WorkStealingDeque, OneElementRaceIsWonExactlyOnce) {
  constexpr int kRounds = 2000;
  Deque dq;
  std::atomic<int> round_ready{-1};
  std::atomic<int> round_done{-1};
  std::atomic<std::size_t> thief_claims{0};
  std::atomic<bool> stop{false};

  std::thread thief([&] {
    int last_seen = -1;
    while (!stop.load()) {
      const int r = round_ready.load();
      if (r == last_seen) {
        std::this_thread::yield();
        continue;
      }
      last_seen = r;
      if (dq.steal() != 0) thief_claims.fetch_add(1);
      round_done.store(r);
    }
  });

  std::size_t owner_claims = 0;
  for (int r = 0; r < kRounds; ++r) {
    dq.push(static_cast<std::size_t>(r) + 1);
    round_ready.store(r);
    if (dq.pop() != 0) ++owner_claims;
    while (round_done.load() != r) std::this_thread::yield();
    ASSERT_TRUE(dq.empty_approx());  // element claimed by someone
  }
  stop.store(true);
  round_ready.store(kRounds);  // release a thief stuck waiting for a round
  thief.join();
  EXPECT_EQ(owner_claims + thief_claims.load(), static_cast<std::size_t>(kRounds));
}

// Owner pushes through repeated grows while a thief drains concurrently:
// stale array pointers held across a grow must still yield the right
// elements (the retired-array guarantee).
TEST(WorkStealingDeque, GrowUnderConcurrentStealLosesNothing) {
  constexpr std::size_t kOps = 20000;
  Deque dq(/*capacity=*/2);
  std::vector<std::atomic<std::uint8_t>> claimed(kOps + 1);
  for (auto& c : claimed) c.store(0);
  std::atomic<std::size_t> total{0};
  std::atomic<bool> done_producing{false};

  auto claim = [&](std::size_t v) {
    ASSERT_LE(v, kOps);
    EXPECT_EQ(claimed[v].fetch_add(1), 0) << "element " << v << " claimed twice";
    total.fetch_add(1);
  };

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  std::thread thief([&] {
    while (total.load() < kOps) {
      const std::size_t v = dq.steal();
      if (v != 0) {
        claim(v);
      } else if (done_producing.load()) {
        if (total.load() >= kOps) break;
        if (std::chrono::steady_clock::now() > deadline) break;  // lost element
        std::this_thread::yield();
      }
    }
  });

  for (std::size_t v = 1; v <= kOps; ++v) {
    dq.push(v);
    if (v % 3 == 0) {
      const std::size_t got = dq.pop();
      if (got != 0) claim(got);
    }
  }
  done_producing.store(true);
  for (std::size_t got = dq.pop(); got != 0; got = dq.pop()) claim(got);
  thief.join();
  EXPECT_EQ(total.load(), kOps);
}

// The acceptance soak: 8 thieves against one pushing-and-popping owner over
// 1M elements, every element claimed exactly once.  A deadline guards the
// join so a lost element fails the test instead of hanging it.
TEST(WorkStealingDeque, EightThiefMillionOpSoakClaimsEveryTaskExactlyOnce) {
  constexpr std::size_t kOps = 1'000'000;
  constexpr int kThieves = 8;
  Deque dq;
  std::vector<std::atomic<std::uint8_t>> claimed(kOps + 1);
  for (auto& c : claimed) c.store(0);
  std::atomic<std::size_t> total{0};
  std::atomic<bool> done_producing{false};
  std::atomic<int> double_claims{0};

  auto claim = [&](std::size_t v) {
    if (claimed[v].fetch_add(1) != 0) double_claims.fetch_add(1);
    total.fetch_add(1);
  };

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(4);
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (total.load() < kOps) {
        const std::size_t v = dq.steal();
        if (v != 0) {
          claim(v);
        } else if (done_producing.load()) {
          if (total.load() >= kOps) break;
          if (std::chrono::steady_clock::now() > deadline) break;  // lost element
          std::this_thread::yield();
        }
      }
    });
  }

  for (std::size_t v = 1; v <= kOps; ++v) {
    dq.push(v);
    if (v % 5 == 0) {  // owner claims some of its own work, LIFO, mid-stream
      const std::size_t got = dq.pop();
      if (got != 0) claim(got);
    }
  }
  done_producing.store(true);
  for (std::size_t got = dq.pop(); got != 0; got = dq.pop()) claim(got);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(double_claims.load(), 0);
  EXPECT_EQ(total.load(), kOps);
  for (std::size_t v = 1; v <= kOps; ++v) {
    if (claimed[v].load() != 1) {
      ADD_FAILURE() << "element " << v << " claimed " << int(claimed[v].load())
                    << " times";
      break;  // one report is enough; don't spam a million lines
    }
  }
}

}  // namespace
}  // namespace bellamy::parallel
