// Concurrency stress suite for the work-stealing ThreadPool (ctest labels:
// parallel + stress; the TSan CI lane runs it under -fsanitize=thread).
//
// The seeded soak mixes every submission path the rest of the codebase
// exercises — external submits, worker-recursive submits, nested
// parallel_for, Strand bursts, concurrent wait_idle — across 1/2/4/8
// workers, and asserts the pool's three load-bearing properties:
//
//   1. exactly-once execution (every task id claimed once, none lost),
//   2. no lost wakeups (every wait_idle returns within a bounded wall-clock
//      budget — a missed notify would park a waiter forever),
//   3. bit-identical parallel_reduce sums vs serial (integer arithmetic, so
//      associativity is exact and any scheduling of the chunks must produce
//      the same bits).
//
// Acceptance: 20/20 seeds green.  Each seed derives its worker count, task
// mix, and burst shape from a SplitMix64 stream, so the 20 runs cover the
// whole worker-count grid with different interleavings.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/strand.hpp"
#include "parallel/thread_pool.hpp"

namespace bellamy::parallel {
namespace {

// Self-contained deterministic stream (util::Rng would also do; SplitMix64
// keeps the suite dependent on nothing but the parallel layer under test).
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

// wait_idle with a wall-clock budget: a lost wakeup parks the waiter
// forever, so "returns within the budget" IS the no-lost-wakeup assertion.
// The budget is generous (single-core CI under TSan is ~10x slow) but
// bounded — a hang fails the test instead of timing out the ctest run.
void wait_idle_bounded(ThreadPool& pool, std::chrono::seconds budget) {
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    pool.wait_idle();
    returned.store(true);
  });
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!returned.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(returned.load())
      << "wait_idle did not return within " << budget.count()
      << "s — lost wakeup or lost task";
  waiter.join();
}

class PoolStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolStress, SeededMixedSoakRunsEveryTaskExactlyOnce) {
  const std::uint64_t seed = GetParam();
  SplitMix64 rng{seed * 0x2545f4914f6cdd1dull + 1};

  static constexpr std::size_t kWorkerGrid[4] = {1, 2, 4, 8};
  const std::size_t workers = kWorkerGrid[seed % 4];
  ThreadPool pool(workers);
  Strand strand_a(pool);
  Strand strand_b(pool);

  constexpr std::size_t kIds = 4096;
  std::vector<std::atomic<std::uint32_t>> runs(kIds);
  for (auto& r : runs) r.store(0);
  std::atomic<std::size_t> next_id{0};
  // Strand mutual-exclusion probes: a strand's tasks must never overlap, so
  // in_flight must be 0 on entry for every task.
  std::atomic<int> strand_a_in_flight{0};
  std::atomic<int> strand_b_in_flight{0};
  std::atomic<std::uint64_t> strand_a_runs{0};
  std::atomic<std::uint64_t> strand_b_runs{0};
  std::atomic<std::uint64_t> strand_a_posts{0};
  std::atomic<std::uint64_t> strand_b_posts{0};
  std::atomic<int> strand_order_violations{0};

  // Claim a fresh task id; returns kIds when the budget is exhausted (the
  // task then just doesn't recurse further).
  auto claim_id = [&]() { return next_id.fetch_add(1); };
  auto mark = [&](std::size_t id) {
    if (id < kIds) runs[id].fetch_add(1);
  };

  // Worker-recursive task: marks its id, then maybe spawns children and
  // maybe runs a nested parallel_for from inside the pool.
  std::function<void(std::size_t, std::uint64_t)> task_body =
      [&](std::size_t id, std::uint64_t stream) {
        mark(id);
        if (id >= kIds) return;
        SplitMix64 local{stream};
        const std::uint64_t shape = local.below(8);
        if (shape == 0) {  // recursive fan-out: two children from a worker
          for (int c = 0; c < 2; ++c) {
            const std::size_t child = claim_id();
            if (child < kIds) {
              pool.submit(task_body, child, local.next());
            }
          }
        } else if (shape == 1) {  // nested parallel_for from a pool worker
          std::atomic<std::uint32_t> hits{0};
          parallel_for(
              8, [&](std::size_t) { hits.fetch_add(1); }, &pool);
          EXPECT_EQ(hits.load(), 8u);
        } else if (shape == 2) {  // strand burst from inside a task
          strand_a_posts.fetch_add(1);
          strand_a.post([&] {
            if (strand_a_in_flight.fetch_add(1) != 0) {
              strand_order_violations.fetch_add(1);
            }
            strand_a_runs.fetch_add(1);
            strand_a_in_flight.fetch_sub(1);
          });
        }
      };

  // External submitters: a couple of plain threads pushing through the
  // injection stripes while the workers generate their own recursive load.
  const int submitters = 1 + static_cast<int>(rng.below(3));
  std::vector<std::thread> external;
  external.reserve(static_cast<std::size_t>(submitters));
  std::atomic<bool> go{false};
  for (int s = 0; s < submitters; ++s) {
    const std::uint64_t stream = rng.next();
    external.emplace_back([&, stream] {
      SplitMix64 local{stream};
      while (!go.load()) std::this_thread::yield();
      for (;;) {
        const std::size_t id = claim_id();
        if (id >= kIds) break;
        pool.submit(task_body, id, local.next());
        if (local.below(16) == 0) {
          // Strand burst from an external thread: three posts that must run
          // serially even though the pool is saturated.
          for (int b = 0; b < 3; ++b) {
            strand_b_posts.fetch_add(1);
            strand_b.post([&] {
              if (strand_b_in_flight.fetch_add(1) != 0) {
                strand_order_violations.fetch_add(1);
              }
              strand_b_runs.fetch_add(1);
              strand_b_in_flight.fetch_sub(1);
            });
          }
        }
        if (local.below(32) == 0) std::this_thread::yield();
      }
    });
  }

  // Serial-vs-parallel reduce, exact integer arithmetic: any chunking and
  // any interleaving must produce the same bits.
  constexpr std::size_t kReduceN = 10000;
  auto value = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761ull + 17;
  };
  std::uint64_t serial_sum = 0;
  for (std::size_t i = 0; i < kReduceN; ++i) serial_sum += value(i);

  go.store(true);
  // Main thread interleaves: nested-free parallel_reduce calls and bounded
  // wait_idle probes while the external submitters and workers churn.
  for (int probe = 0; probe < 4; ++probe) {
    const std::uint64_t parallel_sum = parallel_reduce(
        kReduceN, std::uint64_t{0}, value,
        [](std::uint64_t a, std::uint64_t b) { return a + b; }, &pool);
    EXPECT_EQ(parallel_sum, serial_sum) << "parallel_reduce diverged from serial";
    wait_idle_bounded(pool, std::chrono::seconds(120));
  }

  for (auto& t : external) t.join();
  // Everything submitted; drain and verify exactly-once.
  wait_idle_bounded(pool, std::chrono::seconds(120));
  strand_a.wait_idle();
  strand_b.wait_idle();
  wait_idle_bounded(pool, std::chrono::seconds(120));

  EXPECT_EQ(strand_order_violations.load(), 0)
      << "strand tasks overlapped (serialization broken)";
  EXPECT_EQ(strand_a_runs.load(), strand_a_posts.load());
  EXPECT_EQ(strand_b_runs.load(), strand_b_posts.load());
  std::size_t executed = 0;
  for (std::size_t id = 0; id < kIds; ++id) {
    const std::uint32_t n = runs[id].load();
    if (n != 1) {
      ADD_FAILURE() << "task " << id << " ran " << n << " times (seed " << seed
                    << ", workers " << workers << ")";
      break;
    }
    ++executed;
  }
  EXPECT_EQ(executed, kIds);
}

// 20 seeds; the worker grid {1,2,4,8} cycles through seed % 4, so every
// worker count sees five different interleaving seeds.
INSTANTIATE_TEST_SUITE_P(TwentySeeds, PoolStress,
                         ::testing::Range<std::uint64_t>(0, 20));

// Concurrent wait_idle from several threads at once: all must return, and
// none may return while any task is still pending.
TEST(PoolStressFocused, ConcurrentWaitIdleAllReturnAfterLastTask) {
  ThreadPool pool(4);
  std::atomic<std::uint32_t> done{0};
  constexpr std::uint32_t kTasks = 512;
  for (std::uint32_t i = 0; i < kTasks; ++i) {
    pool.submit([&done] {
      std::this_thread::yield();
      done.fetch_add(1);
    });
  }
  std::atomic<int> premature{0};
  std::vector<std::thread> waiters;
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&] {
      pool.wait_idle();
      if (done.load() != kTasks) premature.fetch_add(1);
    });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(premature.load(), 0) << "wait_idle returned before all tasks finished";
  EXPECT_EQ(done.load(), kTasks);
}

// Submit/park churn: tiny batches with full drains in between is the worst
// case for the sleep/wake protocol (every batch must wake a parked worker).
// A lost wakeup hangs a batch; the bounded wait converts that into a fail.
TEST(PoolStressFocused, RepeatedDrainCyclesNeverLoseAWakeup) {
  ThreadPool pool(2);
  std::atomic<std::uint32_t> done{0};
  for (int cycle = 0; cycle < 500; ++cycle) {
    for (int i = 0; i < 4; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    wait_idle_bounded(pool, std::chrono::seconds(60));
    ASSERT_EQ(done.load(), static_cast<std::uint32_t>((cycle + 1) * 4));
  }
}

// Nested parallel_for at depth 3 from pool workers on every worker count:
// the helping protocol must keep making progress with all workers occupied
// by outer frames.
TEST(PoolStressFocused, DeeplyNestedParallelForCompletesOnEveryWorkerCount) {
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(workers);
    std::atomic<std::uint32_t> leaf_hits{0};
    parallel_for(
        4,
        [&](std::size_t) {
          parallel_for(
              4,
              [&](std::size_t) {
                parallel_for(
                    4, [&](std::size_t) { leaf_hits.fetch_add(1); }, &pool);
              },
              &pool);
        },
        &pool);
    EXPECT_EQ(leaf_hits.load(), 64u) << "workers=" << workers;
    pool.wait_idle();
  }
}

}  // namespace
}  // namespace bellamy::parallel
