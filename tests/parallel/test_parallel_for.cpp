#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace bellamy::parallel {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; }, &pool);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleIteration) {
  ThreadPool pool(2);
  int value = 0;
  parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 5; }, &pool);
  EXPECT_EQ(value, 5);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 57) throw std::runtime_error("bad index");
          },
          &pool),
      std::runtime_error);
}

TEST(ParallelFor, WorksWithSingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> out(50, 0);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i * i); }, &pool);
  EXPECT_EQ(out[7], 49);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> in(100);
  std::iota(in.begin(), in.end(), 0);
  const auto out = parallel_map(in, [](int v) { return v * 2; }, &pool);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i) * 2);
}

TEST(ParallelMap, EmptyInput) {
  ThreadPool pool(2);
  const std::vector<int> in;
  const auto out = parallel_map(in, [](int v) { return v; }, &pool);
  EXPECT_TRUE(out.empty());
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const double total = parallel_reduce(
      n, 0.0, [](std::size_t i) { return static_cast<double>(i); },
      [](double a, double b) { return a + b; }, &pool);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ParallelReduce, EmptyReturnsInit) {
  ThreadPool pool(2);
  const double total = parallel_reduce(
      0, 42.0, [](std::size_t) { return 1.0; }, [](double a, double b) { return a + b; },
      &pool);
  EXPECT_DOUBLE_EQ(total, 42.0);
}

TEST(ParallelFor, LargeWorkStress) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  parallel_for(
      100000, [&](std::size_t i) { sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed); },
      &pool);
  EXPECT_EQ(sum.load(), 100000LL * 99999 / 2);
}

// Nested fan-out: a parallel_for issued from inside a worker of the same
// pool must complete (the caller helps drain the queue instead of blocking a
// worker forever) and still visit every index exactly once.
TEST(ParallelFor, NestedFromPoolWorkerCompletes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4 * 200);
  parallel_for(
      4,
      [&](std::size_t outer) {
        parallel_for(
            200, [&](std::size_t inner) { hits[outer * 200 + inner].fetch_add(1); }, &pool);
      },
      &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Even when EVERY worker blocks on a nested fan-out simultaneously, helping
// guarantees progress — this deadlocked (or serialised wrongly) with a
// plain future wait.
TEST(ParallelFor, AllWorkersNestingSimultaneously) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  parallel_for(
      8,
      [&](std::size_t) {
        const long long local = parallel_reduce(
            1000, 0LL, [](std::size_t i) { return static_cast<long long>(i); },
            [](long long a, long long b) { return a + b; }, &pool);
        sum.fetch_add(local);
      },
      &pool);
  EXPECT_EQ(sum.load(), 8LL * (1000LL * 999 / 2));
}

TEST(ParallelFor, NestedExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(
          2,
          [&](std::size_t) {
            parallel_for(
                50,
                [](std::size_t i) {
                  if (i == 31) throw std::runtime_error("nested failure");
                },
                &pool);
          },
          &pool),
      std::runtime_error);
}

TEST(ThreadPool, TryRunPendingTaskDrainsQueue) {
  ThreadPool pool(1);
  // Park the single worker so submitted tasks stay queued.  Wait until the
  // worker has actually STARTED the parking task — otherwise this thread
  // could pop it out of the queue itself and block on its own promise.
  std::promise<void> started;
  std::promise<void> release;
  auto released = release.get_future().share();
  auto parked = pool.submit([&started, released] {
    started.set_value();
    released.wait();
  });
  started.get_future().wait();
  std::atomic<int> ran{0};
  std::vector<std::future<void>> tasks;
  for (int i = 0; i < 3; ++i) tasks.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  // Drain from THIS thread while the worker is blocked.
  while (pool.try_run_pending_task()) {
  }
  EXPECT_EQ(ran.load(), 3);
  release.set_value();
  parked.get();
  for (auto& t : tasks) t.get();
  EXPECT_FALSE(pool.try_run_pending_task());
}

}  // namespace
}  // namespace bellamy::parallel
