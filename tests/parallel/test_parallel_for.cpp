#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace bellamy::parallel {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; }, &pool);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleIteration) {
  ThreadPool pool(2);
  int value = 0;
  parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 5; }, &pool);
  EXPECT_EQ(value, 5);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 57) throw std::runtime_error("bad index");
          },
          &pool),
      std::runtime_error);
}

TEST(ParallelFor, WorksWithSingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> out(50, 0);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i * i); }, &pool);
  EXPECT_EQ(out[7], 49);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> in(100);
  std::iota(in.begin(), in.end(), 0);
  const auto out = parallel_map(in, [](int v) { return v * 2; }, &pool);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i) * 2);
}

TEST(ParallelMap, EmptyInput) {
  ThreadPool pool(2);
  const std::vector<int> in;
  const auto out = parallel_map(in, [](int v) { return v; }, &pool);
  EXPECT_TRUE(out.empty());
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const double total = parallel_reduce(
      n, 0.0, [](std::size_t i) { return static_cast<double>(i); },
      [](double a, double b) { return a + b; }, &pool);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ParallelReduce, EmptyReturnsInit) {
  ThreadPool pool(2);
  const double total = parallel_reduce(
      0, 42.0, [](std::size_t) { return 1.0; }, [](double a, double b) { return a + b; },
      &pool);
  EXPECT_DOUBLE_EQ(total, 42.0);
}

TEST(ParallelFor, LargeWorkStress) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  parallel_for(
      100000, [&](std::size_t i) { sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed); },
      &pool);
  EXPECT_EQ(sum.load(), 100000LL * 99999 / 2);
}

}  // namespace
}  // namespace bellamy::parallel
