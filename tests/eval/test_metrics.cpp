#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bellamy::eval {
namespace {

TEST(Metrics, AbsoluteError) {
  EXPECT_DOUBLE_EQ(absolute_error(10.0, 7.0), 3.0);
  EXPECT_DOUBLE_EQ(absolute_error(7.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(absolute_error(5.0, 5.0), 0.0);
}

TEST(Metrics, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(50.0, 100.0), 0.5);
  EXPECT_THROW(relative_error(1.0, 0.0), std::invalid_argument);
}

TEST(ErrorAccumulator, EmptyStats) {
  ErrorAccumulator acc;
  const auto s = acc.stats();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mae, 0.0);
  EXPECT_DOUBLE_EQ(s.mre, 0.0);
  EXPECT_DOUBLE_EQ(s.rmse, 0.0);
}

TEST(ErrorAccumulator, SinglePair) {
  ErrorAccumulator acc;
  acc.add(120.0, 100.0);
  const auto s = acc.stats();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mae, 20.0);
  EXPECT_DOUBLE_EQ(s.mre, 0.2);
  EXPECT_DOUBLE_EQ(s.rmse, 20.0);
}

TEST(ErrorAccumulator, MultiplePairs) {
  ErrorAccumulator acc;
  acc.add(110.0, 100.0);  // abs 10, rel 0.1
  acc.add(80.0, 100.0);   // abs 20, rel 0.2
  const auto s = acc.stats();
  EXPECT_DOUBLE_EQ(s.mae, 15.0);
  EXPECT_NEAR(s.mre, 0.15, 1e-12);
  EXPECT_NEAR(s.rmse, std::sqrt((100.0 + 400.0) / 2.0), 1e-12);
}

TEST(ErrorAccumulator, MergeEqualsCombined) {
  ErrorAccumulator a;
  a.add(110.0, 100.0);
  ErrorAccumulator b;
  b.add(80.0, 100.0);
  a.merge(b);
  ErrorAccumulator combined;
  combined.add(110.0, 100.0);
  combined.add(80.0, 100.0);
  EXPECT_DOUBLE_EQ(a.stats().mae, combined.stats().mae);
  EXPECT_DOUBLE_EQ(a.stats().mre, combined.stats().mre);
  EXPECT_EQ(a.count(), 2u);
}

TEST(ComputeErrors, VectorInterface) {
  const auto s = compute_errors({110.0, 90.0}, {100.0, 100.0});
  EXPECT_DOUBLE_EQ(s.mae, 10.0);
  EXPECT_DOUBLE_EQ(s.mre, 0.1);
}

TEST(ComputeErrors, SizeMismatchThrows) {
  EXPECT_THROW(compute_errors({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ComputeErrors, RmseAtLeastMae) {
  const auto s = compute_errors({1.0, 5.0, 9.0}, {2.0, 2.0, 2.0});
  EXPECT_GE(s.rmse, s.mae);
}

}  // namespace
}  // namespace bellamy::eval
