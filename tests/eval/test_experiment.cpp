#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/bell_generator.hpp"
#include "data/c3o_generator.hpp"
#include "data/ground_truth.hpp"
#include "eval/report.hpp"
#include "util/rng.hpp"

namespace bellamy::eval {
namespace {

// Deliberately tiny configuration so the whole driver runs in seconds.
CrossContextConfig tiny_cross_context() {
  CrossContextConfig cfg;
  cfg.algorithms = {"grep"};
  cfg.contexts_per_algorithm = 2;
  cfg.max_splits = 3;
  cfg.max_points = 3;
  cfg.pretrain.epochs = 40;
  cfg.finetune.max_epochs = 60;
  cfg.finetune.patience = 30;
  cfg.seed = 7;
  return cfg;
}

TEST(SelectEvaluationContexts, CoversEveryNodeType) {
  const auto ds = data::C3OGenerator().generate_algorithm("pagerank");
  const auto groups = ds.contexts();
  util::Rng rng(1);
  const auto chosen = select_evaluation_contexts(groups, 7, rng);
  ASSERT_EQ(chosen.size(), 7u);
  std::set<std::string> nodes;
  for (auto i : chosen) nodes.insert(groups[i].runs.front().node_type);
  EXPECT_EQ(nodes.size(), data::c3o_node_catalog().size());
}

TEST(SelectEvaluationContexts, NoDuplicates) {
  const auto ds = data::C3OGenerator().generate_algorithm("sgd");
  const auto groups = ds.contexts();
  util::Rng rng(2);
  const auto chosen = select_evaluation_contexts(groups, 10, rng);
  const std::set<std::size_t> uniq(chosen.begin(), chosen.end());
  EXPECT_EQ(uniq.size(), chosen.size());
}

TEST(SelectEvaluationContexts, CapsAtGroupCount) {
  const auto ds = data::C3OGenerator().generate_algorithm("grep", 3);
  const auto groups = ds.contexts();
  util::Rng rng(3);
  EXPECT_EQ(select_evaluation_contexts(groups, 10, rng).size(), 3u);
  EXPECT_TRUE(select_evaluation_contexts({}, 5, rng).empty());
}

class CrossContextFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::C3OGeneratorConfig gcfg;
    gcfg.seed = 11;
    ds_ = new data::Dataset(data::C3OGenerator(gcfg).generate_algorithm("grep", 4));
    result_ = new ExperimentResult(run_cross_context(*ds_, tiny_cross_context()));
  }
  static void TearDownTestSuite() {
    delete ds_;
    delete result_;
    ds_ = nullptr;
    result_ = nullptr;
  }
  static data::Dataset* ds_;
  static ExperimentResult* result_;
};

data::Dataset* CrossContextFixture::ds_ = nullptr;
ExperimentResult* CrossContextFixture::result_ = nullptr;

TEST_F(CrossContextFixture, ProducesEvalRecords) {
  EXPECT_FALSE(result_->evals.empty());
  EXPECT_FALSE(result_->fits.empty());
}

TEST_F(CrossContextFixture, AllFiveModelsPresent) {
  const auto models = distinct_models(result_->evals);
  const std::set<std::string> expected{"NNLS", "Bell", "Bellamy (local)",
                                       "Bellamy (filtered)", "Bellamy (full)"};
  EXPECT_EQ(std::set<std::string>(models.begin(), models.end()), expected);
}

TEST_F(CrossContextFixture, TasksAreInterpolationAndExtrapolation) {
  std::set<std::string> tasks;
  for (const auto& r : result_->evals) tasks.insert(r.task);
  EXPECT_TRUE(tasks.count("interpolation"));
  EXPECT_TRUE(tasks.count("extrapolation"));
}

TEST_F(CrossContextFixture, BaselinesRespectMinimumPoints) {
  for (const auto& r : result_->evals) {
    if (r.model == "Bell") EXPECT_GE(r.num_points, 3u);
    if (r.model == "NNLS") EXPECT_GE(r.num_points, 1u);
    if (r.model == "Bellamy (local)") EXPECT_GE(r.num_points, 1u);
  }
}

TEST_F(CrossContextFixture, PretrainedBellamyEvaluatedAtZeroPoints) {
  bool found = false;
  for (const auto& r : result_->evals) {
    if (r.model == "Bellamy (full)" && r.num_points == 0) {
      EXPECT_EQ(r.task, "extrapolation");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CrossContextFixture, ErrorsAreConsistent) {
  for (const auto& r : result_->evals) {
    EXPECT_GT(r.actual, 0.0);
    EXPECT_NEAR(r.abs_error, std::abs(r.predicted - r.actual), 1e-9);
    EXPECT_NEAR(r.rel_error, r.abs_error / r.actual, 1e-9);
  }
}

TEST_F(CrossContextFixture, FitsRecordEpochsForBellamyOnly) {
  for (const auto& f : result_->fits) {
    if (f.model == "NNLS" || f.model == "Bell") {
      EXPECT_EQ(f.epochs, 0u);
    }
    EXPECT_GE(f.fit_seconds, 0.0);
  }
}

TEST_F(CrossContextFixture, AggregationHelpers) {
  const auto series = aggregate_series(result_->evals, "interpolation");
  EXPECT_FALSE(series.empty());
  for (const auto& [key, stats] : series) {
    EXPECT_GT(stats.count, 0u);
    EXPECT_GE(stats.mre, 0.0);
  }
  const auto overall = aggregate_overall(result_->evals, "extrapolation");
  EXPECT_FALSE(overall.empty());
  const auto times = mean_fit_seconds(result_->fits);
  EXPECT_TRUE(times.count("NNLS"));
  const auto epochs = epochs_by_algorithm_model(result_->fits);
  EXPECT_FALSE(epochs.empty());
}

TEST(CrossContext, UnknownAlgorithmThrows) {
  const auto ds = data::C3OGenerator().generate_algorithm("grep", 2);
  CrossContextConfig cfg = tiny_cross_context();
  cfg.algorithms = {"wordcount"};
  EXPECT_THROW(run_cross_context(ds, cfg), std::invalid_argument);
}

TEST(CrossEnvironment, ProducesAllVariants) {
  data::C3OGeneratorConfig gcfg;
  gcfg.seed = 13;
  const auto c3o = data::C3OGenerator(gcfg).generate_algorithm("grep", 3);
  data::BellGeneratorConfig bcfg;
  const auto bell = data::BellGenerator(bcfg).generate_algorithm("grep");

  CrossEnvironmentConfig cfg;
  cfg.algorithms = {"grep"};
  cfg.max_splits = 2;
  cfg.max_points = 2;
  cfg.pretrain.epochs = 40;
  cfg.finetune.max_epochs = 50;
  cfg.finetune.patience = 25;
  const auto result = run_cross_environment(c3o, bell, cfg);

  const auto models = distinct_models(result.evals);
  const std::set<std::string> model_set(models.begin(), models.end());
  EXPECT_TRUE(model_set.count("Bellamy (local)"));
  EXPECT_TRUE(model_set.count("Bellamy (partial-unfreeze)"));
  EXPECT_TRUE(model_set.count("Bellamy (full-unfreeze)"));
  EXPECT_TRUE(model_set.count("Bellamy (partial-reset)"));
  EXPECT_TRUE(model_set.count("Bellamy (full-reset)"));
  EXPECT_TRUE(model_set.count("NNLS"));
}

TEST(CrossEnvironment, MissingAlgorithmThrows) {
  const auto c3o = data::C3OGenerator().generate_algorithm("grep", 2);
  const auto bell = data::BellGenerator().generate_algorithm("grep");
  CrossEnvironmentConfig cfg;
  cfg.algorithms = {"sort"};
  EXPECT_THROW(run_cross_environment(c3o, bell, cfg), std::invalid_argument);
}

TEST(Report, AsciiBar) {
  EXPECT_EQ(ascii_bar(5.0, 10.0, 10), "#####-----");
  EXPECT_EQ(ascii_bar(10.0, 10.0, 4), "####");
  EXPECT_EQ(ascii_bar(0.0, 10.0, 4), "----");
  EXPECT_EQ(ascii_bar(20.0, 10.0, 4), "####");  // clamped
  EXPECT_EQ(ascii_bar(1.0, 0.0, 4), "----");    // degenerate maximum
}

}  // namespace
}  // namespace bellamy::eval
