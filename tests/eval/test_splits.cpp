#include "eval/splits.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/c3o_generator.hpp"
#include "util/rng.hpp"

namespace bellamy::eval {
namespace {

std::vector<data::JobRun> context_runs() {
  // One C3O-like context: scale-outs 2..12, 5 repetitions each (30 runs).
  const auto ds = data::C3OGenerator().generate_algorithm("sgd", 1);
  return ds.contexts().front().runs;
}

TEST(Splits, TrainScaleOutsPairwiseDifferent) {
  const auto runs = context_runs();
  util::Rng rng(1);
  const auto splits = generate_splits(runs, 3, 50, rng);
  ASSERT_FALSE(splits.empty());
  for (const auto& s : splits) {
    std::set<int> xs;
    for (std::size_t i : s.train) xs.insert(runs[i].scale_out);
    EXPECT_EQ(xs.size(), s.train.size());
  }
}

TEST(Splits, InterpolationTestInsideRange) {
  const auto runs = context_runs();
  util::Rng rng(2);
  const auto splits = generate_splits(runs, 3, 50, rng);
  for (const auto& s : splits) {
    if (!s.interpolation_test) continue;
    int lo = 1 << 30;
    int hi = 0;
    for (std::size_t i : s.train) {
      lo = std::min(lo, runs[i].scale_out);
      hi = std::max(hi, runs[i].scale_out);
    }
    const int x = runs[*s.interpolation_test].scale_out;
    EXPECT_GE(x, lo);
    EXPECT_LE(x, hi);
  }
}

TEST(Splits, ExtrapolationTestOutsideRange) {
  const auto runs = context_runs();
  util::Rng rng(3);
  const auto splits = generate_splits(runs, 3, 50, rng);
  for (const auto& s : splits) {
    if (!s.extrapolation_test) continue;
    int lo = 1 << 30;
    int hi = 0;
    for (std::size_t i : s.train) {
      lo = std::min(lo, runs[i].scale_out);
      hi = std::max(hi, runs[i].scale_out);
    }
    const int x = runs[*s.extrapolation_test].scale_out;
    EXPECT_TRUE(x < lo || x > hi);
  }
}

TEST(Splits, TestPointsNeverInTrainingSet) {
  const auto runs = context_runs();
  util::Rng rng(4);
  const auto splits = generate_splits(runs, 4, 50, rng);
  for (const auto& s : splits) {
    const std::set<std::size_t> train(s.train.begin(), s.train.end());
    if (s.interpolation_test) EXPECT_FALSE(train.count(*s.interpolation_test));
    if (s.extrapolation_test) EXPECT_FALSE(train.count(*s.extrapolation_test));
  }
}

TEST(Splits, UniqueSplits) {
  const auto runs = context_runs();
  util::Rng rng(5);
  const auto splits = generate_splits(runs, 2, 100, rng);
  std::set<std::string> signatures;
  for (const auto& s : splits) {
    std::string sig;
    auto train = s.train;
    std::sort(train.begin(), train.end());
    for (auto i : train) sig += std::to_string(i) + ",";
    sig += "|" + std::to_string(s.interpolation_test.value_or(9999));
    sig += "|" + std::to_string(s.extrapolation_test.value_or(9999));
    EXPECT_TRUE(signatures.insert(sig).second) << "duplicate split " << sig;
  }
}

TEST(Splits, RespectsMaxSplitsCap) {
  const auto runs = context_runs();
  util::Rng rng(6);
  EXPECT_LE(generate_splits(runs, 3, 10, rng).size(), 10u);
  EXPECT_TRUE(generate_splits(runs, 3, 0, rng).empty());
}

TEST(Splits, ZeroTrainingPointsGivesExtrapolationOnly) {
  const auto runs = context_runs();
  util::Rng rng(7);
  const auto splits = generate_splits(runs, 0, 20, rng);
  ASSERT_FALSE(splits.empty());
  for (const auto& s : splits) {
    EXPECT_TRUE(s.train.empty());
    EXPECT_FALSE(s.interpolation_test.has_value());
    EXPECT_TRUE(s.extrapolation_test.has_value());
  }
}

TEST(Splits, AllScaleOutsUsedNoExtrapolationPossible) {
  // Training on all 6 distinct scale-outs leaves no out-of-range point.
  const auto runs = context_runs();
  util::Rng rng(8);
  const auto splits = generate_splits(runs, 6, 50, rng);
  for (const auto& s : splits) {
    EXPECT_FALSE(s.extrapolation_test.has_value());
    EXPECT_TRUE(s.interpolation_test.has_value());
  }
}

TEST(Splits, MoreTrainPointsThanScaleOutsIsEmpty) {
  const auto runs = context_runs();
  util::Rng rng(9);
  EXPECT_TRUE(generate_splits(runs, 7, 50, rng).empty());
}

TEST(Splits, SingleTrainingPoint) {
  const auto runs = context_runs();
  util::Rng rng(10);
  const auto splits = generate_splits(runs, 1, 30, rng);
  ASSERT_FALSE(splits.empty());
  for (const auto& s : splits) {
    EXPECT_EQ(s.train.size(), 1u);
    // With one training point the "range" is that single scale-out; an
    // interpolation test can only be another repetition at the same x.
    if (s.interpolation_test) {
      EXPECT_EQ(runs[*s.interpolation_test].scale_out, runs[s.train[0]].scale_out);
    }
    EXPECT_TRUE(s.extrapolation_test.has_value());
  }
}

TEST(Splits, TrainRunsHelper) {
  const auto runs = context_runs();
  util::Rng rng(11);
  const auto splits = generate_splits(runs, 3, 5, rng);
  ASSERT_FALSE(splits.empty());
  const auto tr = train_runs(runs, splits[0]);
  ASSERT_EQ(tr.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(tr[i].runtime_s, runs[splits[0].train[i]].runtime_s);
  }
}

TEST(Splits, DeterministicGivenSeed) {
  const auto runs = context_runs();
  util::Rng rng1(12);
  util::Rng rng2(12);
  const auto a = generate_splits(runs, 3, 20, rng1);
  const auto b = generate_splits(runs, 3, 20, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].train, b[i].train);
    EXPECT_EQ(a[i].interpolation_test, b[i].interpolation_test);
    EXPECT_EQ(a[i].extrapolation_test, b[i].extrapolation_test);
  }
}

TEST(Splits, EmptyRunsThrows) {
  util::Rng rng(13);
  EXPECT_THROW(generate_splits({}, 2, 10, rng), std::invalid_argument);
}

TEST(Splits, CapExhaustionTerminates) {
  // Tiny context (one scale-out, two reps): only a handful of unique splits
  // exist — generation must stop, not loop forever.
  std::vector<data::JobRun> runs(2);
  runs[0].scale_out = 2;
  runs[0].runtime_s = 10.0;
  runs[1].scale_out = 2;
  runs[1].runtime_s = 11.0;
  util::Rng rng(14);
  const auto splits = generate_splits(runs, 1, 100, rng);
  EXPECT_LE(splits.size(), 2u);
}

}  // namespace
}  // namespace bellamy::eval
