#include "data/ground_truth.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bellamy::data {
namespace {

ContextSpec spec(const std::string& algo, const std::string& node = "m4.xlarge",
                 const std::string& params = "", std::uint64_t size = 10240,
                 const std::string& chars = "x") {
  ContextSpec s;
  s.algorithm = algo;
  s.node_type = node;
  s.job_parameters = params;
  s.dataset_size_mb = size;
  s.data_characteristics = chars;
  return s;
}

TEST(NodeCatalog, C3OHasSixTypes) {
  EXPECT_EQ(c3o_node_catalog().size(), 6u);
}

TEST(NodeCatalog, LookupByName) {
  const NodeType& n = node_type_by_name("m4.2xlarge");
  EXPECT_EQ(n.cpu_cores, 8u);
  EXPECT_GT(n.memory_mb, 0u);
  EXPECT_THROW(node_type_by_name("z9.mega"), std::invalid_argument);
}

TEST(NodeCatalog, BellNodeIsKnown) {
  EXPECT_NO_THROW(node_type_by_name(bell_node_type().name));
}

TEST(CurveParams, RuntimeFormula) {
  CurveParams c;
  c.theta0 = 10.0;
  c.theta1 = 100.0;
  c.theta2 = 5.0;
  c.theta3 = 2.0;
  // x = 1: 10 + 100 + 0 + 2 = 112.
  EXPECT_DOUBLE_EQ(c.runtime(1, 100000, 1000), 112.0);
  EXPECT_THROW(c.runtime(0, 1, 1), std::invalid_argument);
}

TEST(CurveParams, SpillPenaltyKicksInUnderMemoryPressure) {
  CurveParams c;
  c.theta1 = 100.0;
  c.spill_penalty = 50.0;
  c.spill_knee = 0.5;
  // pressure = 10000 / (2 * 1000) = 5 > 0.5 -> penalty applies.
  const double with_pressure = c.runtime(2, 1000, 10000);
  const double without = c.runtime(2, 1000000, 10000);
  EXPECT_GT(with_pressure, without);
}

TEST(DeriveCurve, AllAlgorithmsProduceNonNegativeTheta) {
  for (const auto& algo : c3o_algorithms()) {
    const CurveParams c = derive_curve(spec(algo, "m4.xlarge", "10"));
    EXPECT_GE(c.theta0, 0.0) << algo;
    EXPECT_GE(c.theta1, 0.0) << algo;
    EXPECT_GE(c.theta2, 0.0) << algo;
    EXPECT_GE(c.theta3, 0.0) << algo;
  }
}

TEST(DeriveCurve, UnknownAlgorithmThrows) {
  EXPECT_THROW(derive_curve(spec("wordcount")), std::invalid_argument);
}

TEST(DeriveCurve, FasterNodeFasterRuntime) {
  const CurveParams slow = derive_curve(spec("grep", "r4.xlarge", "x"));
  const CurveParams fast = derive_curve(spec("grep", "c4.2xlarge", "x"));
  EXPECT_LT(fast.runtime(4, 15360, 10240), slow.runtime(4, 31232, 10240));
}

TEST(DeriveCurve, LargerDatasetLongerRuntime) {
  const CurveParams small = derive_curve(spec("sort", "m4.xlarge", "", 5120));
  const CurveParams large = derive_curve(spec("sort", "m4.xlarge", "", 40960));
  EXPECT_LT(small.runtime(6, 16384, 5120), large.runtime(6, 16384, 40960));
}

TEST(DeriveCurve, MoreIterationsLongerRuntime) {
  const CurveParams few = derive_curve(spec("sgd", "m4.xlarge", "25"));
  const CurveParams many = derive_curve(spec("sgd", "m4.xlarge", "100"));
  EXPECT_LT(few.runtime(6, 16384, 10240), many.runtime(6, 16384, 10240));
}

TEST(DeriveCurve, EnvironmentOverheadScalesRuntime) {
  ContextSpec base = spec("grep");
  ContextSpec slow_env = base;
  slow_env.environment_overhead = 1.5;
  const double r1 = derive_curve(base).runtime(4, 16384, 10240);
  const double r2 = derive_curve(slow_env).runtime(4, 16384, 10240);
  EXPECT_NEAR(r2 / r1, 1.5, 1e-9);
}

TEST(DeriveCurve, TrivialAlgorithmsMonotoneDecreasing) {
  // grep/sort/pagerank: runtime decreases across 2..12 machines (the paper's
  // "rather trivial" scale-out behaviour).
  for (const auto& algo : {"grep", "sort", "pagerank"}) {
    const CurveParams c = derive_curve(spec(algo, "m4.xlarge", "10", 20480));
    double prev = c.runtime(2, 1u << 30, 20480);  // huge memory: no spill
    for (int x = 4; x <= 12; x += 2) {
      const double cur = c.runtime(x, 1u << 30, 20480);
      EXPECT_LT(cur, prev) << algo << " at x=" << x;
      prev = cur;
    }
  }
}

TEST(DeriveCurve, NonTrivialAlgorithmsTurnUpwards) {
  // sgd/kmeans with many iterations: the curve bottoms out inside 2..12 and
  // rises again (non-trivial scale-out behaviour, paper Fig. 2/5).
  for (const auto& [algo, params] : {std::pair<const char*, const char*>{"sgd", "100"},
                                     {"kmeans", "16:100"}}) {
    const CurveParams c = derive_curve(spec(algo, "m4.xlarge", params, 2048));
    double best = 1e300;
    int best_x = 0;
    for (int x = 2; x <= 12; x += 2) {
      const double r = c.runtime(x, 1u << 30, 2048);
      if (r < best) {
        best = r;
        best_x = x;
      }
    }
    EXPECT_LT(best_x, 12) << algo << ": runtime should rise again before x=12";
    EXPECT_GT(c.runtime(12, 1u << 30, 2048), best) << algo;
  }
}

TEST(HasNontrivialScaleout, Classification) {
  EXPECT_TRUE(has_nontrivial_scaleout("sgd"));
  EXPECT_TRUE(has_nontrivial_scaleout("kmeans"));
  EXPECT_FALSE(has_nontrivial_scaleout("grep"));
  EXPECT_FALSE(has_nontrivial_scaleout("sort"));
  EXPECT_FALSE(has_nontrivial_scaleout("pagerank"));
}

TEST(SampleRuntime, NoiseIsMultiplicativeAndCentered) {
  const ContextSpec s = spec("grep");
  const CurveParams c = derive_curve(s);
  util::Rng rng(1);
  const double base = c.runtime(4, 16384, 10240);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += sample_runtime(c, s, 4, 0.05, rng);
  EXPECT_NEAR(sum / n / base, 1.0, 0.01);  // log-normal corrected to mean 1
}

TEST(SampleRuntime, ZeroNoiseIsDeterministic) {
  const ContextSpec s = spec("sort");
  const CurveParams c = derive_curve(s);
  util::Rng rng(2);
  const double a = sample_runtime(c, s, 4, 0.0, rng);
  const double b = sample_runtime(c, s, 4, 0.0, rng);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(a, c.runtime(4, node_type_by_name(s.node_type).memory_mb, 10240));
}

TEST(C3OContextCounts, MatchPaper) {
  EXPECT_EQ(c3o_context_count("sort"), 21u);
  EXPECT_EQ(c3o_context_count("grep"), 27u);
  EXPECT_EQ(c3o_context_count("sgd"), 30u);
  EXPECT_EQ(c3o_context_count("kmeans"), 30u);
  EXPECT_EQ(c3o_context_count("pagerank"), 47u);
  EXPECT_THROW(c3o_context_count("wordcount"), std::invalid_argument);
}

}  // namespace
}  // namespace bellamy::data
