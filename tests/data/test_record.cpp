#include "data/record.hpp"

#include <gtest/gtest.h>

namespace bellamy::data {
namespace {

JobRun make_run() {
  JobRun r;
  r.algorithm = "sgd";
  r.environment = "c3o-cloud";
  r.node_type = "m4.2xlarge";
  r.job_parameters = "25";
  r.dataset_size_mb = 19353;
  r.data_characteristics = "features-100-dense";
  r.memory_mb = 32768;
  r.cpu_cores = 8;
  r.scale_out = 6;
  r.runtime_s = 321.5;
  return r;
}

TEST(JobRun, ContextKeyCoversEssentialProperties) {
  const JobRun r = make_run();
  const std::string key = r.context_key();
  EXPECT_NE(key.find("sgd"), std::string::npos);
  EXPECT_NE(key.find("m4.2xlarge"), std::string::npos);
  EXPECT_NE(key.find("25"), std::string::npos);
  EXPECT_NE(key.find("19353"), std::string::npos);
  EXPECT_NE(key.find("features-100-dense"), std::string::npos);
}

TEST(JobRun, ScaleOutDoesNotChangeContext) {
  JobRun a = make_run();
  JobRun b = make_run();
  b.scale_out = 12;
  b.runtime_s = 100.0;
  EXPECT_TRUE(a.same_context(b));
}

TEST(JobRun, NodeTypeChangesContext) {
  JobRun a = make_run();
  JobRun b = make_run();
  b.node_type = "r4.2xlarge";
  EXPECT_FALSE(a.same_context(b));
}

TEST(JobRun, DatasetSizeChangesContext) {
  JobRun a = make_run();
  JobRun b = make_run();
  b.dataset_size_mb = 14540;
  EXPECT_FALSE(a.same_context(b));
}

TEST(JobRun, JobParametersChangeContext) {
  JobRun a = make_run();
  JobRun b = make_run();
  b.job_parameters = "100";
  EXPECT_FALSE(a.same_context(b));
}

TEST(JobRun, OptionalPropertiesDoNotChangeContext) {
  JobRun a = make_run();
  JobRun b = make_run();
  b.memory_mb = 1;
  b.cpu_cores = 1;
  EXPECT_TRUE(a.same_context(b));
}

TEST(JobRun, OrderingIsDeterministic) {
  JobRun a = make_run();
  JobRun b = make_run();
  b.scale_out = 8;
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  JobRun c = make_run();
  c.algorithm = "grep";
  EXPECT_TRUE(c < a);  // "grep" < "sgd"
}

}  // namespace
}  // namespace bellamy::data
