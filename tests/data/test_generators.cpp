#include <gtest/gtest.h>

#include <set>

#include "data/bell_generator.hpp"
#include "data/c3o_generator.hpp"
#include "data/ground_truth.hpp"

namespace bellamy::data {
namespace {

TEST(C3OGenerator, PaperCardinalities) {
  const C3OGenerator gen;
  const Dataset ds = gen.generate();
  // 155 contexts x 6 scale-outs = 930 unique experiments; x5 reps = 4650 rows.
  EXPECT_EQ(ds.num_unique_experiments(), 930u);
  EXPECT_EQ(ds.size(), 4650u);
  EXPECT_EQ(ds.algorithms().size(), 5u);
}

TEST(C3OGenerator, PerAlgorithmContextCounts) {
  const C3OGenerator gen;
  for (const auto& algo : c3o_algorithms()) {
    const Dataset ds = gen.generate_algorithm(algo);
    EXPECT_EQ(ds.num_contexts(), c3o_context_count(algo)) << algo;
  }
}

TEST(C3OGenerator, ScaleOutsTwoToTwelve) {
  const C3OGenerator gen;
  EXPECT_EQ(gen.scale_outs(), (std::vector<int>{2, 4, 6, 8, 10, 12}));
  const Dataset ds = gen.generate_algorithm("grep");
  std::set<int> xs;
  for (const auto& r : ds.runs()) xs.insert(r.scale_out);
  EXPECT_EQ(xs, (std::set<int>{2, 4, 6, 8, 10, 12}));
}

TEST(C3OGenerator, FiveRepetitionsPerCell) {
  const C3OGenerator gen;
  const Dataset ds = gen.generate_algorithm("sort");
  const auto groups = ds.contexts();
  for (const auto& g : groups) {
    for (int x : g.scale_outs()) {
      EXPECT_EQ(g.runs_at(x).size(), 5u);
    }
  }
}

TEST(C3OGenerator, DeterministicGivenSeed) {
  C3OGeneratorConfig cfg;
  cfg.seed = 99;
  const Dataset a = C3OGenerator(cfg).generate_algorithm("sgd");
  const Dataset b = C3OGenerator(cfg).generate_algorithm("sgd");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.runs()[i].runtime_s, b.runs()[i].runtime_s);
  }
}

TEST(C3OGenerator, DifferentSeedsDifferentRuntimes) {
  C3OGeneratorConfig a_cfg;
  a_cfg.seed = 1;
  C3OGeneratorConfig b_cfg;
  b_cfg.seed = 2;
  const Dataset a = C3OGenerator(a_cfg).generate_algorithm("grep");
  const Dataset b = C3OGenerator(b_cfg).generate_algorithm("grep");
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a.runs()[i].runtime_s != b.runs()[i].runtime_s;
  }
  EXPECT_TRUE(any_diff);
}

TEST(C3OGenerator, EveryNodeTypeAppears) {
  const Dataset ds = C3OGenerator().generate_algorithm("pagerank");
  std::set<std::string> nodes;
  for (const auto& r : ds.runs()) nodes.insert(r.node_type);
  EXPECT_EQ(nodes.size(), c3o_node_catalog().size());
}

TEST(C3OGenerator, RuntimesPositiveAndPlausible) {
  const Dataset ds = C3OGenerator().generate();
  for (const auto& r : ds.runs()) {
    EXPECT_GT(r.runtime_s, 0.0);
    EXPECT_LT(r.runtime_s, 100000.0);
  }
}

TEST(C3OGenerator, OptionalPropertiesMatchNodeCatalog) {
  const Dataset ds = C3OGenerator().generate_algorithm("kmeans");
  for (const auto& r : ds.runs()) {
    const NodeType& n = node_type_by_name(r.node_type);
    EXPECT_EQ(r.memory_mb, n.memory_mb);
    EXPECT_EQ(r.cpu_cores, n.cpu_cores);
    EXPECT_EQ(r.environment, "c3o-cloud");
  }
}

TEST(C3OGenerator, CustomContextCount) {
  const Dataset ds = C3OGenerator().generate_algorithm("grep", 3);
  EXPECT_EQ(ds.num_contexts(), 3u);
}

TEST(C3OGenerator, InvalidConfigThrows) {
  C3OGeneratorConfig cfg;
  cfg.repetitions = 0;
  EXPECT_THROW(C3OGenerator{cfg}, std::invalid_argument);
  C3OGeneratorConfig cfg2;
  cfg2.min_scaleout = 10;
  cfg2.max_scaleout = 2;
  EXPECT_THROW(C3OGenerator{cfg2}, std::invalid_argument);
}

TEST(C3OGenerator, RepetitionNoiseWithinSameCell) {
  const Dataset ds = C3OGenerator().generate_algorithm("sgd");
  const auto g = ds.contexts().front();
  const auto reps = g.runs_at(g.scale_outs().front());
  ASSERT_EQ(reps.size(), 5u);
  bool any_diff = false;
  for (std::size_t i = 1; i < reps.size(); ++i) {
    any_diff |= reps[i].runtime_s != reps[0].runtime_s;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BellGenerator, PaperStructure) {
  const BellGenerator gen;
  const Dataset ds = gen.generate();
  EXPECT_EQ(ds.algorithms().size(), 3u);
  // 3 algorithms x 1 context x 15 scale-outs x 7 reps = 315 rows.
  EXPECT_EQ(ds.size(), 315u);
  EXPECT_EQ(ds.num_unique_experiments(), 45u);
}

TEST(BellGenerator, ScaleOutsFourToSixtyStepFour) {
  const BellGenerator gen;
  const auto xs = gen.scale_outs();
  EXPECT_EQ(xs.size(), 15u);
  EXPECT_EQ(xs.front(), 4);
  EXPECT_EQ(xs.back(), 60);
  EXPECT_EQ(xs[1] - xs[0], 4);
}

TEST(BellGenerator, SingleContextPerAlgorithm) {
  const BellGenerator gen;
  for (const auto& algo : BellGenerator::algorithms()) {
    EXPECT_EQ(gen.generate_algorithm(algo).num_contexts(), 1u) << algo;
  }
}

TEST(BellGenerator, SevenRepetitions) {
  const Dataset ds = BellGenerator().generate_algorithm("sgd");
  const auto g = ds.contexts().front();
  for (int x : g.scale_outs()) EXPECT_EQ(g.runs_at(x).size(), 7u);
}

TEST(BellGenerator, UsesBellEnvironment) {
  const Dataset ds = BellGenerator().generate();
  for (const auto& r : ds.runs()) {
    EXPECT_EQ(r.environment, "bell-cluster");
    EXPECT_EQ(r.node_type, bell_node_type().name);
  }
}

TEST(BellGenerator, UnsupportedAlgorithmThrows) {
  EXPECT_THROW(BellGenerator().generate_algorithm("sort"), std::invalid_argument);
}

TEST(BellGenerator, EnvironmentShiftRaisesRuntimes) {
  // Same algorithm, comparable scale-out: the Bell cluster (slower nodes +
  // overhead) should be slower than the fastest cloud contexts at equal x.
  BellGeneratorConfig cfg;
  const Dataset bell = BellGenerator(cfg).generate_algorithm("grep");
  double bell_at_8 = bell.contexts().front().mean_runtime_at(8);
  EXPECT_GT(bell_at_8, 0.0);
}

TEST(BellGenerator, Deterministic) {
  const Dataset a = BellGenerator().generate();
  const Dataset b = BellGenerator().generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.runs()[i].runtime_s, b.runs()[i].runtime_s);
  }
}

}  // namespace
}  // namespace bellamy::data
