#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace bellamy::data {
namespace {

JobRun run(const std::string& algo, const std::string& node, std::uint64_t size_mb,
           const std::string& params, const std::string& chars, int x, double rt) {
  JobRun r;
  r.algorithm = algo;
  r.node_type = node;
  r.dataset_size_mb = size_mb;
  r.job_parameters = params;
  r.data_characteristics = chars;
  r.scale_out = x;
  r.runtime_s = rt;
  return r;
}

Dataset make_dataset() {
  Dataset ds;
  // Context A: sgd on m4 with 10 GB.
  ds.add(run("sgd", "m4.xlarge", 10240, "25", "dense", 2, 400.0));
  ds.add(run("sgd", "m4.xlarge", 10240, "25", "dense", 2, 420.0));
  ds.add(run("sgd", "m4.xlarge", 10240, "25", "dense", 4, 250.0));
  // Context B: sgd on r4 with 20 GB.
  ds.add(run("sgd", "r4.xlarge", 20480, "100", "sparse", 2, 900.0));
  ds.add(run("sgd", "r4.xlarge", 20480, "100", "sparse", 6, 500.0));
  // Context C: grep.
  ds.add(run("grep", "m4.xlarge", 10240, "error", "logs", 4, 120.0));
  return ds;
}

TEST(Dataset, SizeAndAlgorithms) {
  const Dataset ds = make_dataset();
  EXPECT_EQ(ds.size(), 6u);
  EXPECT_EQ(ds.algorithms(), (std::vector<std::string>{"grep", "sgd"}));
}

TEST(Dataset, FilterAlgorithm) {
  const Dataset ds = make_dataset();
  EXPECT_EQ(ds.filter_algorithm("sgd").size(), 5u);
  EXPECT_EQ(ds.filter_algorithm("grep").size(), 1u);
  EXPECT_TRUE(ds.filter_algorithm("sort").empty());
}

TEST(Dataset, ContextGrouping) {
  const Dataset ds = make_dataset();
  const auto groups = ds.contexts();
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(ds.num_contexts(), 3u);
}

TEST(Dataset, ContextGroupScaleOuts) {
  const auto groups = make_dataset().filter_algorithm("sgd").contexts();
  ASSERT_EQ(groups.size(), 2u);
  // Deterministic order by context key; m4 context has scale-outs {2, 4}.
  bool found = false;
  for (const auto& g : groups) {
    if (g.runs.front().node_type == "m4.xlarge") {
      EXPECT_EQ(g.scale_outs(), (std::vector<int>{2, 4}));
      EXPECT_DOUBLE_EQ(g.mean_runtime_at(2), 410.0);
      EXPECT_EQ(g.runs_at(2).size(), 2u);
      EXPECT_DOUBLE_EQ(g.mean_runtime_at(99), 0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dataset, FilterAndExcludeContext) {
  const Dataset ds = make_dataset();
  const std::string key = ds.runs().front().context_key();
  EXPECT_EQ(ds.filter_context(key).size(), 3u);
  EXPECT_EQ(ds.exclude_context(key).size(), 3u);
}

TEST(Dataset, FilterDissimilarRequiresAllDifferent) {
  const Dataset ds = make_dataset();
  JobRun ref = run("sgd", "m4.xlarge", 10240, "25", "dense", 2, 0.0);
  const Dataset dissimilar = ds.filter_dissimilar(ref);
  // Only context B qualifies: different node, params, characteristics and
  // 100 % size difference.  Context A matches ref; grep is another algorithm.
  EXPECT_EQ(dissimilar.size(), 2u);
  for (const auto& r : dissimilar.runs()) EXPECT_EQ(r.node_type, "r4.xlarge");
}

TEST(Dataset, FilterDissimilarSizeThreshold) {
  Dataset ds;
  ds.add(run("sgd", "a-node", 10000, "p1", "c1", 2, 1.0));
  ds.add(run("sgd", "b-node", 11500, "p2", "c2", 2, 1.0));  // +15 % — too close
  ds.add(run("sgd", "c-node", 12500, "p3", "c3", 2, 1.0));  // +25 % — dissimilar
  // Node b-node/c-node contexts differ in everything but size from ref.
  JobRun ref = run("sgd", "a-node", 10000, "p1", "c1", 2, 0.0);
  // The catalog check: b excluded (size), c included.
  const Dataset out = ds.filter_dissimilar(ref);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.runs()[0].node_type, "c-node");
}

TEST(Dataset, NumUniqueExperiments) {
  const Dataset ds = make_dataset();
  // Context A has 2 scale-outs, B has 2, C has 1 -> 5 unique cells.
  EXPECT_EQ(ds.num_unique_experiments(), 5u);
}

TEST(Dataset, MeanRuntimeByScaleout) {
  const Dataset ds = make_dataset().filter_algorithm("grep");
  const auto by_x = ds.mean_runtime_by_scaleout();
  ASSERT_EQ(by_x.size(), 1u);
  EXPECT_DOUBLE_EQ(by_x.at(4), 120.0);
}

TEST(Dataset, AppendCombines) {
  Dataset a = make_dataset();
  Dataset b;
  b.add(run("sort", "m4.xlarge", 5120, "128", "uniform", 2, 80.0));
  a.append(b);
  EXPECT_EQ(a.size(), 7u);
  EXPECT_EQ(a.algorithms().size(), 3u);
}

TEST(Dataset, GenericFilter) {
  const Dataset ds = make_dataset();
  const Dataset big = ds.filter([](const JobRun& r) { return r.runtime_s > 300.0; });
  EXPECT_EQ(big.size(), 4u);
}

TEST(Dataset, SampleReturnsRequestedSubset) {
  const Dataset ds = make_dataset();
  util::Rng rng(1);
  const Dataset s = ds.sample(3, rng);
  EXPECT_EQ(s.size(), 3u);
  // Every sampled run exists in the source.
  for (const auto& r : s.runs()) {
    bool found = false;
    for (const auto& orig : ds.runs()) {
      found |= orig.context_key() == r.context_key() && orig.scale_out == r.scale_out &&
               orig.runtime_s == r.runtime_s;
    }
    EXPECT_TRUE(found);
  }
}

TEST(Dataset, SampleLargerThanSizeReturnsAll) {
  const Dataset ds = make_dataset();
  util::Rng rng(2);
  EXPECT_EQ(ds.sample(100, rng).size(), ds.size());
}

TEST(Dataset, SampleIsDeterministicPerSeed) {
  const Dataset ds = make_dataset();
  util::Rng a(3);
  util::Rng b(3);
  const Dataset s1 = ds.sample(4, a);
  const Dataset s2 = ds.sample(4, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.runs()[i].runtime_s, s2.runs()[i].runtime_s);
  }
}

TEST(Dataset, SampleDoesNotDuplicate) {
  Dataset ds;
  for (int i = 0; i < 10; ++i) ds.add(run("sgd", "n", 1, "p", "c", 2, 1.0 + i));
  util::Rng rng(4);
  const Dataset s = ds.sample(10, rng);
  std::set<double> runtimes;
  for (const auto& r : s.runs()) runtimes.insert(r.runtime_s);
  EXPECT_EQ(runtimes.size(), 10u);
}

TEST(Dataset, EmptyDatasetBehaviour) {
  const Dataset ds;
  EXPECT_TRUE(ds.empty());
  EXPECT_TRUE(ds.contexts().empty());
  EXPECT_TRUE(ds.algorithms().empty());
  EXPECT_EQ(ds.num_unique_experiments(), 0u);
}

}  // namespace
}  // namespace bellamy::data
