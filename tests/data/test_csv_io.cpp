#include "data/csv_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/c3o_generator.hpp"

namespace bellamy::data {
namespace {

TEST(CsvIo, RoundTripPreservesEverything) {
  C3OGeneratorConfig cfg;
  const Dataset original = C3OGenerator(cfg).generate_algorithm("sgd", 2);
  std::stringstream ss;
  save_csv(ss, original);
  const Dataset loaded = load_csv(ss);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const JobRun& a = original.runs()[i];
    const JobRun& b = loaded.runs()[i];
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.environment, b.environment);
    EXPECT_EQ(a.node_type, b.node_type);
    EXPECT_EQ(a.job_parameters, b.job_parameters);
    EXPECT_EQ(a.dataset_size_mb, b.dataset_size_mb);
    EXPECT_EQ(a.data_characteristics, b.data_characteristics);
    EXPECT_EQ(a.memory_mb, b.memory_mb);
    EXPECT_EQ(a.cpu_cores, b.cpu_cores);
    EXPECT_EQ(a.scale_out, b.scale_out);
    EXPECT_NEAR(a.runtime_s, b.runtime_s, 1e-5);  // %.6f in the CSV
  }
}

TEST(CsvIo, HeaderMatchesSchema) {
  Dataset ds;
  JobRun r;
  r.algorithm = "grep";
  r.scale_out = 2;
  r.runtime_s = 1.0;
  ds.add(r);
  std::stringstream ss;
  save_csv(ss, ds);
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header,
            "algorithm,environment,node_type,job_parameters,dataset_size_mb,"
            "data_characteristics,memory_mb,cpu_cores,scale_out,runtime_s");
}

TEST(CsvIo, LoadRejectsMissingColumn) {
  std::stringstream ss("algorithm,scale_out\ngrep,2\n");
  EXPECT_THROW(load_csv(ss), std::out_of_range);
}

TEST(CsvIo, LoadRejectsInvalidScaleOut) {
  std::stringstream ss;
  ss << "algorithm,environment,node_type,job_parameters,dataset_size_mb,"
        "data_characteristics,memory_mb,cpu_cores,scale_out,runtime_s\n"
     << "grep,env,node,p,1,c,1,1,0,5.0\n";
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(CsvIo, LoadRejectsNegativeRuntime) {
  std::stringstream ss;
  ss << "algorithm,environment,node_type,job_parameters,dataset_size_mb,"
        "data_characteristics,memory_mb,cpu_cores,scale_out,runtime_s\n"
     << "grep,env,node,p,1,c,1,1,2,-5.0\n";
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(CsvIo, HandlesCommasInProperties) {
  Dataset ds;
  JobRun r;
  r.algorithm = "grep";
  r.job_parameters = "pattern, with comma";
  r.scale_out = 2;
  r.runtime_s = 1.0;
  ds.add(r);
  std::stringstream ss;
  save_csv(ss, ds);
  const Dataset back = load_csv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.runs()[0].job_parameters, "pattern, with comma");
}

TEST(CsvIo, MissingFileThrows) {
  EXPECT_THROW(load_csv_file("/does/not/exist.csv"), std::runtime_error);
}

TEST(CsvIo, EmptyDatasetWritesHeaderOnly) {
  std::stringstream ss;
  save_csv(ss, Dataset{});
  const Dataset back = load_csv(ss);
  EXPECT_TRUE(back.empty());
}

}  // namespace
}  // namespace bellamy::data
