// Wire-protocol property tests: every message type round-trips bit-exactly
// through encode_frame/decode_frame under randomized payloads, and every
// class of hostile input (truncation at EVERY prefix length, version skew,
// unknown/wrong types, trailing bytes, oversized frames, out-of-range enum
// bytes) is rejected with the right TYPED WireStatus — never a crash, never
// a silently wrong decode.

#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace bellamy::net {
namespace {

// ---------------------------------------------------------------------------
// Randomized payload builders (seeded: failures reproduce)
// ---------------------------------------------------------------------------

std::string random_string(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  // Full byte range: the wire must be 8-bit clean (checkpoint text is not,
  // but the protocol must not care).
  std::uniform_int_distribution<int> byte(0, 255);
  std::string s(len(rng), '\0');
  for (char& c : s) c = static_cast<char>(byte(rng));
  return s;
}

double random_double(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  return dist(rng);
}

data::JobRun random_run(std::mt19937_64& rng) {
  data::JobRun run;
  run.algorithm = random_string(rng, 12);
  run.environment = random_string(rng, 12);
  run.node_type = random_string(rng, 12);
  run.job_parameters = random_string(rng, 8);
  run.dataset_size_mb = rng();
  run.data_characteristics = random_string(rng, 16);
  run.memory_mb = rng();
  run.cpu_cores = rng();
  run.scale_out = static_cast<int>(rng() % 1000) - 500;
  run.runtime_s = random_double(rng);
  return run;
}

void expect_run_eq(const data::JobRun& a, const data::JobRun& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.environment, b.environment);
  EXPECT_EQ(a.node_type, b.node_type);
  EXPECT_EQ(a.job_parameters, b.job_parameters);
  EXPECT_EQ(a.dataset_size_mb, b.dataset_size_mb);
  EXPECT_EQ(a.data_characteristics, b.data_characteristics);
  EXPECT_EQ(a.memory_mb, b.memory_mb);
  EXPECT_EQ(a.cpu_cores, b.cpu_cores);
  EXPECT_EQ(a.scale_out, b.scale_out);
  EXPECT_EQ(a.runtime_s, b.runtime_s);  // bit-exact: f64 travels as raw bits
}

serve::ModelKey random_key(std::mt19937_64& rng) {
  return serve::ModelKey{random_string(rng, 10), random_string(rng, 10)};
}

/// Encode, decode, and hand the decoded copy back for field comparison.
template <typename Msg>
Msg round_trip(const Msg& msg) {
  const std::vector<std::uint8_t> frame = encode_frame(msg);
  Msg out;
  const WireStatus status = decode_frame(frame.data(), frame.size(), out);
  EXPECT_EQ(status, WireStatus::kOk) << to_string(status);
  return out;
}

/// Recompute the trailing FNV-1a checksum after a DELIBERATE mutation.
/// Without this, every hostile-input test below would short-circuit at
/// kChecksumMismatch instead of exercising the layer it targets.
void reseal(std::vector<std::uint8_t>& frame) {
  ASSERT_GE(frame.size(), 4 + 4 + kFrameChecksumBytes);
  const std::uint64_t sum =
      util::fnv1a64_bytes(frame.data() + 4, frame.size() - 4 - kFrameChecksumBytes);
  std::memcpy(frame.data() + frame.size() - kFrameChecksumBytes, &sum, sizeof sum);
}

// ---------------------------------------------------------------------------
// Round trips, randomized
// ---------------------------------------------------------------------------

TEST(Wire, PredictRequestRoundTrip) {
  std::mt19937_64 rng(101);
  for (int i = 0; i < 50; ++i) {
    PredictRequest msg;
    msg.request_id = rng();
    msg.key = random_key(rng);
    msg.query = random_run(rng);
    const PredictRequest out = round_trip(msg);
    EXPECT_EQ(out.request_id, msg.request_id);
    EXPECT_EQ(out.key, msg.key);
    expect_run_eq(out.query, msg.query);
  }
}

TEST(Wire, PredictManyRequestRoundTripIncludingZeroLengthBatch) {
  std::mt19937_64 rng(102);
  for (int i = 0; i < 30; ++i) {
    PredictManyRequest msg;
    msg.request_id = rng();
    msg.key = random_key(rng);
    const std::size_t n = i == 0 ? 0 : rng() % 17;  // first iteration: empty batch
    for (std::size_t k = 0; k < n; ++k) msg.queries.push_back(random_run(rng));
    const PredictManyRequest out = round_trip(msg);
    EXPECT_EQ(out.request_id, msg.request_id);
    ASSERT_EQ(out.queries.size(), msg.queries.size());
    for (std::size_t k = 0; k < n; ++k) expect_run_eq(out.queries[k], msg.queries[k]);
  }
}

TEST(Wire, PublishRequestRoundTripIsEightBitClean) {
  std::mt19937_64 rng(103);
  PublishRequest msg;
  msg.request_id = rng();
  msg.key = random_key(rng);
  msg.checkpoint_text = random_string(rng, 4096);
  msg.checkpoint_text.push_back('\0');  // embedded NUL must survive
  msg.checkpoint_text += random_string(rng, 64);
  const PublishRequest out = round_trip(msg);
  EXPECT_EQ(out.key, msg.key);
  EXPECT_EQ(out.checkpoint_text, msg.checkpoint_text);
}

TEST(Wire, RefitAsyncRequestRoundTrip) {
  std::mt19937_64 rng(104);
  for (int i = 0; i < 20; ++i) {
    RefitAsyncRequest msg;
    msg.request_id = rng();
    msg.key = random_key(rng);
    const std::size_t n = rng() % 5;
    for (std::size_t k = 0; k < n; ++k) msg.runs.push_back(random_run(rng));
    msg.config.max_epochs = rng() % 10000;
    msg.config.base_lr = random_double(rng);
    msg.config.max_lr = random_double(rng);
    msg.config.lr_cycle = rng() % 1000;
    msg.config.weight_decay = random_double(rng);
    msg.config.mae_target_seconds = random_double(rng);
    msg.config.patience = rng() % 10000;
    msg.config.seed = rng();
    msg.config.unlock_f_after = rng() % 100;
    msg.config.unlock_f_immediately = (rng() & 1) != 0;
    msg.config.train_autoencoder = (rng() & 1) != 0;
    msg.config.batch_size = rng() % 64;
    msg.strategy = static_cast<std::uint8_t>(rng() % 4);

    const RefitAsyncRequest out = round_trip(msg);
    EXPECT_EQ(out.request_id, msg.request_id);
    EXPECT_EQ(out.key, msg.key);
    ASSERT_EQ(out.runs.size(), msg.runs.size());
    EXPECT_EQ(out.config.max_epochs, msg.config.max_epochs);
    EXPECT_EQ(out.config.base_lr, msg.config.base_lr);
    EXPECT_EQ(out.config.max_lr, msg.config.max_lr);
    EXPECT_EQ(out.config.lr_cycle, msg.config.lr_cycle);
    EXPECT_EQ(out.config.weight_decay, msg.config.weight_decay);
    EXPECT_EQ(out.config.mae_target_seconds, msg.config.mae_target_seconds);
    EXPECT_EQ(out.config.patience, msg.config.patience);
    EXPECT_EQ(out.config.seed, msg.config.seed);
    EXPECT_EQ(out.config.unlock_f_after, msg.config.unlock_f_after);
    EXPECT_EQ(out.config.unlock_f_immediately, msg.config.unlock_f_immediately);
    EXPECT_EQ(out.config.train_autoencoder, msg.config.train_autoencoder);
    EXPECT_EQ(out.config.batch_size, msg.config.batch_size);
    EXPECT_EQ(out.strategy, msg.strategy);
  }
}

TEST(Wire, SmallRequestsRoundTrip) {
  std::mt19937_64 rng(105);
  MetricsRequest metrics;
  metrics.request_id = rng();
  metrics.key = random_key(rng);
  EXPECT_EQ(round_trip(metrics).key, metrics.key);

  SetQosRequest qos;
  qos.request_id = rng();
  qos.key = random_key(rng);
  qos.qos_class = 1;
  qos.weight = 0.25;
  qos.max_lag_us = 20000;
  const SetQosRequest qos_out = round_trip(qos);
  EXPECT_EQ(qos_out.qos_class, qos.qos_class);
  EXPECT_EQ(qos_out.weight, qos.weight);
  EXPECT_EQ(qos_out.max_lag_us, qos.max_lag_us);

  EraseRequest erase;
  erase.request_id = rng();
  erase.key = random_key(rng);
  EXPECT_EQ(round_trip(erase).key, erase.key);

  DrainRequest drain;
  drain.request_id = rng();
  EXPECT_EQ(round_trip(drain).request_id, drain.request_id);
}

TEST(Wire, ResponsesRoundTrip) {
  std::mt19937_64 rng(106);

  PredictResponse predict;
  predict.head.request_id = rng();
  predict.head.status = serve::ServeStatus::kOk;
  predict.value = random_double(rng);
  const PredictResponse predict_out = round_trip(predict);
  EXPECT_EQ(predict_out.head.request_id, predict.head.request_id);
  EXPECT_EQ(predict_out.value, predict.value);

  PredictResponse failed;
  failed.head.request_id = rng();
  failed.head.status = serve::ServeStatus::kUnknownModel;
  failed.head.message = "no entry for sgd/ctx";
  const PredictResponse failed_out = round_trip(failed);
  EXPECT_EQ(failed_out.head.status, serve::ServeStatus::kUnknownModel);
  EXPECT_EQ(failed_out.head.message, failed.head.message);

  PredictManyResponse many;
  many.head.request_id = rng();
  for (int i = 0; i < 9; ++i) many.values.push_back(random_double(rng));
  const PredictManyResponse many_out = round_trip(many);
  EXPECT_EQ(many_out.values, many.values);
  PredictManyResponse empty;
  empty.head.request_id = rng();
  EXPECT_TRUE(round_trip(empty).values.empty());

  RefitResponse refit;
  refit.head.request_id = rng();
  refit.epochs_run = rng() % 5000;
  refit.best_mae_seconds = random_double(rng);
  refit.reached_target = 1;
  refit.fit_seconds = random_double(rng);
  const RefitResponse refit_out = round_trip(refit);
  EXPECT_EQ(refit_out.epochs_run, refit.epochs_run);
  EXPECT_EQ(refit_out.best_mae_seconds, refit.best_mae_seconds);
  EXPECT_EQ(refit_out.reached_target, refit.reached_target);

  MetricsResponse metrics;
  metrics.head.request_id = rng();
  metrics.metrics.requests = rng();
  metrics.metrics.responses = rng();
  metrics.metrics.interarrival_ewma_us = random_double(rng);
  metrics.metrics.latency_p50_us = rng();
  metrics.metrics.latency_p95_us = rng();
  metrics.metrics.latency_p99_us = rng();
  metrics.metrics.latency_count = rng();
  metrics.metrics.drift_error_ewma = random_double(rng);
  metrics.metrics.drift_reports = rng();
  metrics.metrics.drift_refits = rng();
  metrics.metrics.reductions = rng();
  metrics.metrics.reduction_runs_dropped = rng();
  metrics.metrics.reduction_last_kept = rng();
  const MetricsResponse metrics_out = round_trip(metrics);
  EXPECT_EQ(metrics_out.metrics.requests, metrics.metrics.requests);
  EXPECT_EQ(metrics_out.metrics.latency_p99_us, metrics.metrics.latency_p99_us);
  EXPECT_EQ(metrics_out.metrics.interarrival_ewma_us, metrics.metrics.interarrival_ewma_us);
  EXPECT_EQ(metrics_out.metrics.drift_error_ewma, metrics.metrics.drift_error_ewma);
  EXPECT_EQ(metrics_out.metrics.drift_reports, metrics.metrics.drift_reports);
  EXPECT_EQ(metrics_out.metrics.drift_refits, metrics.metrics.drift_refits);
  EXPECT_EQ(metrics_out.metrics.reductions, metrics.metrics.reductions);
  EXPECT_EQ(metrics_out.metrics.reduction_runs_dropped, metrics.metrics.reduction_runs_dropped);
  EXPECT_EQ(metrics_out.metrics.reduction_last_kept, metrics.metrics.reduction_last_kept);

  PublishResponse publish;
  publish.head.request_id = rng();
  EXPECT_EQ(round_trip(publish).head.request_id, publish.head.request_id);
  SetQosResponse set_qos;
  set_qos.head.request_id = rng();
  EXPECT_EQ(round_trip(set_qos).head.request_id, set_qos.head.request_id);
  EraseResponse erase;
  erase.head.request_id = rng();
  EXPECT_EQ(round_trip(erase).head.request_id, erase.head.request_id);
  DrainResponse drain;
  drain.head.request_id = rng();
  EXPECT_EQ(round_trip(drain).head.request_id, drain.head.request_id);
}

// ---------------------------------------------------------------------------
// Hostile input
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> sample_frame() {
  std::mt19937_64 rng(107);
  PredictManyRequest msg;
  msg.request_id = rng();
  msg.key = random_key(rng);
  for (int i = 0; i < 3; ++i) msg.queries.push_back(random_run(rng));
  return encode_frame(msg);
}

TEST(Wire, TruncationAtEveryPrefixLengthIsATypedError) {
  const std::vector<std::uint8_t> frame = sample_frame();
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    PredictManyRequest out;
    const WireStatus status = decode_frame(frame.data(), cut, out);
    EXPECT_NE(status, WireStatus::kOk) << "prefix length " << cut << " decoded";
    EXPECT_EQ(status, WireStatus::kTruncated) << "prefix length " << cut;
  }
}

TEST(Wire, InnerTruncationOfThePayloadIsATypedError) {
  // Rewrite the length prefix so the FRAME is self-consistent (resealed
  // checksum included) but the payload is cut short: the failure must come
  // from the message decoder, not the frame parser.  Cuts below the minimum
  // body (version + type + trailer) are the frame parser's kTruncated.
  const std::vector<std::uint8_t> frame = sample_frame();
  for (std::size_t cut = 4; cut + 4 < frame.size(); cut += 7) {
    std::vector<std::uint8_t> spliced(frame.begin(), frame.begin() + cut + 4);
    const std::uint32_t len = static_cast<std::uint32_t>(cut);
    std::memcpy(spliced.data(), &len, sizeof len);
    if (cut >= 4 + kFrameChecksumBytes) reseal(spliced);
    PredictManyRequest out;
    const WireStatus status = decode_frame(spliced.data(), spliced.size(), out);
    EXPECT_TRUE(status == WireStatus::kTruncated || status == WireStatus::kTrailingBytes ||
                status == WireStatus::kOversizedFrame)
        << "cut " << cut << ": " << to_string(status);
    EXPECT_NE(status, WireStatus::kOk);
  }
}

TEST(Wire, VersionMismatchIsRejected) {
  std::vector<std::uint8_t> frame = sample_frame();
  const std::uint16_t bad_version = kWireVersion + 1;
  std::memcpy(frame.data() + 4, &bad_version, sizeof bad_version);
  PredictManyRequest out;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out), WireStatus::kVersionMismatch);
}

TEST(Wire, UnknownTypeIsRejected) {
  std::vector<std::uint8_t> frame = sample_frame();
  const std::uint16_t bad_type = 77;  // hole in the catalog
  std::memcpy(frame.data() + 6, &bad_type, sizeof bad_type);
  PredictManyRequest out;
  // The type bytes are under the checksum: a corrupted type reads as frame
  // corruption until the mutation is resealed as a deliberate one.
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out), WireStatus::kChecksumMismatch);
  reseal(frame);
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out), WireStatus::kUnknownType);
  EXPECT_FALSE(is_known_type(bad_type));
  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kPredictRequest)));
}

TEST(Wire, WrongTypeIsRejected) {
  const std::vector<std::uint8_t> frame = sample_frame();  // a PredictManyRequest
  PredictRequest out;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out), WireStatus::kWrongType);
}

TEST(Wire, TrailingBytesAreRejectedAtBothLayers) {
  // Outer: junk after a complete frame.
  std::vector<std::uint8_t> outer = sample_frame();
  outer.push_back(0xAB);
  PredictManyRequest out;
  EXPECT_EQ(decode_frame(outer.data(), outer.size(), out), WireStatus::kTrailingBytes);

  // Inner: the frame's len covers payload + junk, so the frame parses
  // (checksum resealed over the widened body) but the message decoder must
  // notice leftover bytes.
  std::vector<std::uint8_t> inner = sample_frame();
  inner.push_back(0xCD);
  const std::uint32_t len = static_cast<std::uint32_t>(inner.size() - 4);
  std::memcpy(inner.data(), &len, sizeof len);
  reseal(inner);
  EXPECT_EQ(decode_frame(inner.data(), inner.size(), out), WireStatus::kTrailingBytes);
}

TEST(Wire, OversizedAndRuntFramesAreRejected) {
  std::vector<std::uint8_t> frame = sample_frame();
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(frame.data(), &huge, sizeof huge);
  PredictManyRequest out;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out), WireStatus::kOversizedFrame);

  const std::uint32_t runt = 3;  // cannot hold version + type
  std::memcpy(frame.data(), &runt, sizeof runt);
  FrameView view;
  EXPECT_EQ(parse_frame(frame.data(), 4 + 3, view), WireStatus::kOversizedFrame);
}

TEST(Wire, OutOfRangeEnumBytesAreMalformed) {
  // ServeStatus byte beyond the enum range.
  PredictResponse resp;
  resp.head.request_id = 7;
  std::vector<std::uint8_t> frame = encode_frame(resp);
  // Payload layout: u64 request_id, then the status byte.
  frame[kFrameHeaderBytes + 8] = 99;
  reseal(frame);
  PredictResponse out;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out), WireStatus::kMalformed);

  SetQosRequest qos;
  qos.key = {"a", "b"};
  qos.qos_class = 7;  // not a QosClass
  const std::vector<std::uint8_t> qos_frame = encode_frame(qos);
  SetQosRequest qos_out;
  EXPECT_EQ(decode_frame(qos_frame.data(), qos_frame.size(), qos_out),
            WireStatus::kMalformed);

  RefitAsyncRequest refit;
  refit.key = {"a", "b"};
  refit.strategy = 9;  // not a ReuseStrategy
  const std::vector<std::uint8_t> refit_frame = encode_frame(refit);
  RefitAsyncRequest refit_out;
  EXPECT_EQ(decode_frame(refit_frame.data(), refit_frame.size(), refit_out),
            WireStatus::kMalformed);
}

TEST(Wire, SingleBitFlipAnywhereInBodyOrTrailerIsAChecksumMismatch) {
  // Flip every bit of every byte past the length prefix.  The version bytes
  // are checked first (a flipped version reads as skew), but EVERY other
  // corruption — type, payload, or the trailer itself — must surface as the
  // typed kChecksumMismatch, never as a wrong decode or a different error.
  const std::vector<std::uint8_t> frame = sample_frame();
  for (std::size_t i = 4; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> corrupt = frame;
      corrupt[i] = static_cast<std::uint8_t>(corrupt[i] ^ (1u << bit));
      PredictManyRequest out;
      const WireStatus status = decode_frame(corrupt.data(), corrupt.size(), out);
      if (i < 6) {
        EXPECT_EQ(status, WireStatus::kVersionMismatch) << "byte " << i << " bit " << bit;
      } else {
        EXPECT_EQ(status, WireStatus::kChecksumMismatch) << "byte " << i << " bit " << bit;
      }
    }
  }
}

TEST(Wire, ChecksumTrailerIsFnv1aOverVersionTypeAndPayload) {
  // Layout contract: the trailer is the FNV-1a 64 of everything between the
  // length prefix and the trailer itself, and len counts body + trailer.
  const std::vector<std::uint8_t> frame = sample_frame();
  ASSERT_GE(frame.size(), kFrameHeaderBytes + kFrameChecksumBytes);
  std::uint32_t len = 0;
  std::memcpy(&len, frame.data(), sizeof len);
  EXPECT_EQ(static_cast<std::size_t>(len), frame.size() - 4);
  const std::uint64_t expected =
      util::fnv1a64_bytes(frame.data() + 4, frame.size() - 4 - kFrameChecksumBytes);
  std::uint64_t stored = 0;
  std::memcpy(&stored, frame.data() + frame.size() - kFrameChecksumBytes, sizeof stored);
  EXPECT_EQ(stored, expected);

  // Resealing an unmodified frame is a no-op.
  std::vector<std::uint8_t> resealed = frame;
  reseal(resealed);
  EXPECT_EQ(resealed, frame);
}

TEST(Wire, ReportRunRoundTrip) {
  std::mt19937_64 rng(111);
  for (int i = 0; i < 20; ++i) {
    ReportRunRequest msg;
    msg.request_id = rng();
    msg.key = random_key(rng);
    msg.run = random_run(rng);
    const ReportRunRequest out = round_trip(msg);
    EXPECT_EQ(out.request_id, msg.request_id);
    EXPECT_EQ(out.key, msg.key);
    expect_run_eq(out.run, msg.run);
  }

  ReportRunResponse resp;
  resp.head.request_id = rng();
  resp.error_ewma = random_double(rng);
  resp.reports = rng();
  resp.refit_triggered = 1;
  const ReportRunResponse resp_out = round_trip(resp);
  EXPECT_EQ(resp_out.head.request_id, resp.head.request_id);
  EXPECT_EQ(resp_out.error_ewma, resp.error_ewma);
  EXPECT_EQ(resp_out.reports, resp.reports);
  EXPECT_EQ(resp_out.refit_triggered, resp.refit_triggered);

  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kReportRunRequest)));
  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kReportRunResponse)));
}

TEST(Wire, ReportRunResponseNonBoolTriggerIsMalformed) {
  ReportRunResponse resp;
  resp.head.request_id = 5;
  resp.refit_triggered = 2;  // not a bool byte
  const std::vector<std::uint8_t> frame = encode_frame(resp);
  ReportRunResponse out;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out), WireStatus::kMalformed);
}

// ---------------------------------------------------------------------------
// Exchange messages (advertise / digest / pull)
// ---------------------------------------------------------------------------

TEST(Wire, ExchangeRequestsRoundTrip) {
  std::mt19937_64 rng(108);
  for (int i = 0; i < 20; ++i) {
    AdvertiseRequest adv;
    adv.request_id = rng();
    const std::size_t n = i == 0 ? 0 : rng() % 9;  // first iteration: empty catalog
    for (std::size_t k = 0; k < n; ++k) {
      adv.entries.push_back(DigestEntry{random_key(rng), rng() | 1});  // stamp != 0
    }
    const AdvertiseRequest adv_out = round_trip(adv);
    EXPECT_EQ(adv_out.request_id, adv.request_id);
    ASSERT_EQ(adv_out.entries.size(), adv.entries.size());
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(adv_out.entries[k].key, adv.entries[k].key);
      EXPECT_EQ(adv_out.entries[k].stamp, adv.entries[k].stamp);
    }

    DigestRequest digest;
    digest.request_id = rng();
    EXPECT_EQ(round_trip(digest).request_id, digest.request_id);

    PullRequest pull;
    pull.request_id = rng();
    pull.key = random_key(rng);
    const PullRequest pull_out = round_trip(pull);
    EXPECT_EQ(pull_out.request_id, pull.request_id);
    EXPECT_EQ(pull_out.key, pull.key);
  }
}

TEST(Wire, ExchangeResponsesRoundTripEightBitClean) {
  std::mt19937_64 rng(109);

  AdvertiseResponse adv;
  adv.head.request_id = rng();
  EXPECT_EQ(round_trip(adv).head.request_id, adv.head.request_id);

  DigestResponse digest;
  digest.head.request_id = rng();
  for (int k = 0; k < 5; ++k) {
    digest.entries.push_back(DigestEntry{random_key(rng), rng() | 1});
  }
  const DigestResponse digest_out = round_trip(digest);
  ASSERT_EQ(digest_out.entries.size(), digest.entries.size());
  for (std::size_t k = 0; k < digest.entries.size(); ++k) {
    EXPECT_EQ(digest_out.entries[k].key, digest.entries[k].key);
    EXPECT_EQ(digest_out.entries[k].stamp, digest.entries[k].stamp);
  }

  PullResponse pull;
  pull.head.request_id = rng();
  pull.stamp = rng() | 1;
  pull.checkpoint_text = random_string(rng, 4096);
  pull.checkpoint_text.push_back('\0');  // embedded NUL must survive
  pull.checkpoint_text += random_string(rng, 64);
  const PullResponse pull_out = round_trip(pull);
  EXPECT_EQ(pull_out.stamp, pull.stamp);
  EXPECT_EQ(pull_out.checkpoint_text, pull.checkpoint_text);

  // A FAILED pull carries no payload: stamp 0 is legal there (and only there).
  PullResponse failed;
  failed.head.request_id = rng();
  failed.head.status = serve::ServeStatus::kUnknownModel;
  failed.head.message = "pull sgd/ctx: not in this node's catalog";
  const PullResponse failed_out = round_trip(failed);
  EXPECT_EQ(failed_out.head.status, serve::ServeStatus::kUnknownModel);
  EXPECT_EQ(failed_out.stamp, 0u);
}

TEST(Wire, ExchangeTruncationAtEveryPrefixLengthIsATypedError) {
  std::mt19937_64 rng(110);
  AdvertiseRequest adv;
  adv.request_id = rng();
  for (int k = 0; k < 3; ++k) adv.entries.push_back(DigestEntry{random_key(rng), rng() | 1});
  const std::vector<std::uint8_t> adv_frame = encode_frame(adv);
  for (std::size_t cut = 0; cut < adv_frame.size(); ++cut) {
    AdvertiseRequest out;
    EXPECT_EQ(decode_frame(adv_frame.data(), cut, out), WireStatus::kTruncated)
        << "advertise prefix length " << cut;
  }

  PullResponse pull;
  pull.head.request_id = rng();
  pull.stamp = 7;
  pull.checkpoint_text = random_string(rng, 256);
  const std::vector<std::uint8_t> pull_frame = encode_frame(pull);
  for (std::size_t cut = 0; cut < pull_frame.size(); ++cut) {
    PullResponse out;
    EXPECT_EQ(decode_frame(pull_frame.data(), cut, out), WireStatus::kTruncated)
        << "pull prefix length " << cut;
  }
}

TEST(Wire, ZeroStampsAreMalformed) {
  // Stamp 0 means "absent" in the exchange layer; a peer must never put it
  // on the wire.  In a digest entry:
  AdvertiseRequest adv;
  adv.request_id = 7;
  adv.entries.push_back(DigestEntry{{"sgd", "ctx"}, 0});
  const std::vector<std::uint8_t> adv_frame = encode_frame(adv);
  AdvertiseRequest adv_out;
  EXPECT_EQ(decode_frame(adv_frame.data(), adv_frame.size(), adv_out),
            WireStatus::kMalformed);

  // And on a SUCCESSFUL pull (error pulls legitimately carry stamp 0).
  PullResponse pull;
  pull.head.request_id = 8;
  pull.head.status = serve::ServeStatus::kOk;
  pull.stamp = 0;
  pull.checkpoint_text = "weights";
  const std::vector<std::uint8_t> pull_frame = encode_frame(pull);
  PullResponse pull_out;
  EXPECT_EQ(decode_frame(pull_frame.data(), pull_frame.size(), pull_out),
            WireStatus::kMalformed);
}

TEST(Wire, ExchangeTypesAreKnownAndDistinct) {
  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kAdvertiseRequest)));
  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kDigestRequest)));
  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kPullRequest)));
  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kAdvertiseResponse)));
  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kDigestResponse)));
  EXPECT_TRUE(is_known_type(static_cast<std::uint16_t>(MsgType::kPullResponse)));

  // Decoding an exchange frame as a different message is kWrongType, not a
  // garbage decode.
  DigestRequest digest;
  digest.request_id = 3;
  const std::vector<std::uint8_t> frame = encode_frame(digest);
  PullRequest out;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out), WireStatus::kWrongType);
}

TEST(Wire, StringLengthBeyondPayloadIsTruncatedNotOverread) {
  // A string header claiming 2^31 bytes inside a tiny payload must fail
  // cleanly (no allocation of attacker-sized buffers, no overread).
  WireWriter w;
  w.u64(42);                  // request_id
  w.u32(0x7FFFFFFFu);         // absurd string length for key.job
  w.u8(0xFF);                 // one byte of "string"
  WireWriter framed;
  framed.u32(static_cast<std::uint32_t>(w.size() + 4 + kFrameChecksumBytes));
  framed.u16(kWireVersion);
  framed.u16(static_cast<std::uint16_t>(MsgType::kMetricsRequest));
  std::vector<std::uint8_t> frame = framed.take();
  frame.insert(frame.end(), w.bytes().begin(), w.bytes().end());
  frame.resize(frame.size() + kFrameChecksumBytes);  // trailer slot
  reseal(frame);

  MetricsRequest out;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), out), WireStatus::kTruncated);
}

}  // namespace
}  // namespace bellamy::net
