// End-to-end loopback tests: a real ServeServer on an ephemeral port, real
// NetClient connections, and the acceptance invariants of the net layer:
//
//   * multi-client predict/predict_many over TCP is BIT-IDENTICAL to the
//     local model (checkpoint-text publish + coalescing transparency),
//   * every request gets exactly one response (metrics agree),
//   * admin operations (set_qos, metrics, erase) work over the wire with
//     typed error propagation,
//   * a background refit over the wire produces the same weights as the
//     same refit in-process (deferred RefitResponse event),
//   * graceful drain: concurrent in-flight traffic either completes or
//     fails kShutdown — nothing hangs, nothing is answered twice.
//
// Runs under ASan/UBSan in CI (label "net").

#include "net/net.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "serve/serve.hpp"

namespace bellamy::net {
namespace {

core::FineTuneConfig quick_finetune() {
  core::FineTuneConfig cfg;
  cfg.max_epochs = 80;
  cfg.patience = 40;
  return cfg;
}

/// One pre-trained model + a running server on an ephemeral port.  Pass
/// DriftOptions to attach a DriftMonitor (the report_run wire path).
struct Loopback {
  explicit Loopback(std::optional<serve::DriftOptions> drift = std::nullopt) {
    data::C3OGeneratorConfig gen;
    gen.seed = 61;
    ds = data::C3OGenerator(gen).generate_algorithm("sgd", 4);
    target_runs = ds.contexts().front().runs;

    model.emplace(core::BellamyConfig{}, /*seed=*/17);
    core::PreTrainConfig pre;
    pre.epochs = 60;
    core::pretrain(*model, ds.runs(), pre);

    serve::ServeOptions options;
    options.max_batch = 8;
    options.flush_deadline = std::chrono::microseconds(200);
    options.workers = 2;
    service.emplace(registry, options);

    ServerOptions server_options;
    if (drift) {
      monitor.emplace(registry, *drift);
      server_options.drift_monitor = &*monitor;
    }
    server.emplace(registry, *service, server_options);
    std::string error;
    if (!server->start(error)) throw std::runtime_error("server start: " + error);
  }

  ~Loopback() {
    server->stop();
    server.reset();
    service.reset();
  }

  void connect(NetClient& client) {
    std::string error;
    if (!client.connect("127.0.0.1", server->port(), error)) {
      throw std::runtime_error("connect: " + error);
    }
  }

  data::JobRun query(int scale_out) const {
    data::JobRun q = ds.runs().front();
    q.scale_out = scale_out;
    return q;
  }

  data::Dataset ds;
  std::vector<data::JobRun> target_runs;
  std::optional<core::BellamyModel> model;
  serve::ModelRegistry registry;
  std::optional<serve::DriftMonitor> monitor;  ///< must outlive the server
  std::optional<serve::PredictionService> service;
  std::optional<ServeServer> server;
};

TEST(Loopback, MultiClientPredictManyIsBitIdenticalToTheLocalModel) {
  Loopback loop;
  const serve::ModelKey key{"sgd", "loopback"};
  NetClient control;
  loop.connect(control);
  ASSERT_TRUE(control.publish(key, *loop.model).ok());

  std::vector<double> expected(61, 0.0);
  for (int x = 1; x <= 60; ++x) expected[static_cast<std::size_t>(x)] = loop.model->predict_one(loop.query(x));

  constexpr int kClients = 4;
  constexpr int kBatches = 6;
  constexpr int kBatchSize = 24;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client;
      loop.connect(client);
      for (int b = 0; b < kBatches; ++b) {
        std::vector<data::JobRun> queries;
        std::vector<double> want;
        for (int i = 0; i < kBatchSize; ++i) {
          const int x = 1 + (c * 31 + b * 7 + i) % 60;
          queries.push_back(loop.query(x));
          want.push_back(expected[static_cast<std::size_t>(x)]);
        }
        const auto result = client.predict_many(key, queries);
        if (!result.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (result.value() != want) mismatches.fetch_add(1);  // bit-exact ==
      }
      client.close();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Exactly one response per request, visible over the wire.
  const auto metrics = control.metrics(key);
  ASSERT_TRUE(metrics.ok()) << metrics.error_text();
  const serve::ServeMetrics& m = metrics.value();
  EXPECT_EQ(m.requests, static_cast<std::uint64_t>(kClients * kBatches * kBatchSize));
  EXPECT_EQ(m.responses, m.requests);
  EXPECT_EQ(m.latency_count, m.responses);
  EXPECT_GT(m.latency_p99_us, 0u);
  EXPECT_LE(m.latency_p50_us, m.latency_p95_us);
  EXPECT_LE(m.latency_p95_us, m.latency_p99_us);
  control.close();
}

TEST(Loopback, EmptyBatchAndSinglePredictWork) {
  Loopback loop;
  const serve::ModelKey key{"sgd", "single"};
  NetClient client;
  loop.connect(client);
  ASSERT_TRUE(client.publish(key, *loop.model).ok());

  const auto empty = client.predict_many(key, {});
  ASSERT_TRUE(empty.ok()) << empty.error_text();
  EXPECT_TRUE(empty.value().empty());

  const auto one = client.predict(key, loop.query(12));
  ASSERT_TRUE(one.ok()) << one.error_text();
  EXPECT_EQ(one.value(), loop.model->predict_one(loop.query(12)));
  client.close();
}

TEST(Loopback, AdminOperationsAndTypedErrorsTravelTheWire) {
  Loopback loop;
  const serve::ModelKey key{"sgd", "admin"};
  NetClient client;
  loop.connect(client);

  // Unknown model: the typed status arrives, not a dropped connection.
  EXPECT_EQ(client.predict(key, loop.query(3)).status(), serve::ServeStatus::kUnknownModel);
  EXPECT_EQ(client.metrics(key).status(), serve::ServeStatus::kUnknownModel);

  ASSERT_TRUE(client.publish(key, *loop.model).ok());
  ASSERT_TRUE(client.predict(key, loop.query(3)).ok());

  // set_qos round trip, including the server-side validation.
  serve::HandleQos qos;
  qos.qos = serve::QosClass::kBulk;
  qos.weight = 0.5;
  qos.max_lag = std::chrono::microseconds(10000);
  EXPECT_TRUE(client.set_qos(key, qos).ok());
  qos.weight = -1.0;  // rejected by PredictionService::set_qos
  EXPECT_EQ(client.set_qos(key, qos).status(), serve::ServeStatus::kInvalidArgument);

  // erase retires the key for every later request.
  EXPECT_TRUE(client.erase(key).ok());
  EXPECT_EQ(client.predict(key, loop.query(3)).status(), serve::ServeStatus::kUnknownModel);
  client.close();
}

TEST(Loopback, ReportRunWithoutAMonitorIsTyped) {
  Loopback loop;  // no DriftOptions: the server has no monitor attached
  const serve::ModelKey key{"sgd", "nomonitor"};
  NetClient client;
  loop.connect(client);
  ASSERT_TRUE(client.publish(key, *loop.model).ok());

  data::JobRun run = loop.query(4);
  run.runtime_s = 100.0;
  EXPECT_EQ(client.report_run(key, run).status(), serve::ServeStatus::kInvalidArgument);
  client.close();
}

TEST(Loopback, ReportRunFeedsTheMonitorAndMetricsCarryDriftCounters) {
  serve::DriftOptions drift;
  drift.ewma_alpha = 0.2;
  drift.threshold = 0.0;  // monitor only: no refits in this test
  Loopback loop(drift);
  const serve::ModelKey key{"sgd", "drift"};
  NetClient client;
  loop.connect(client);

  // Unknown keys stay typed on the report path too.
  EXPECT_EQ(client.report_run(key, loop.query(2)).status(),
            serve::ServeStatus::kUnknownModel);

  ASSERT_TRUE(client.publish(key, *loop.model).ok());

  double want_ewma = 0.0;
  for (int i = 0; i < 10; ++i) {
    data::JobRun run = loop.query(1 + i % 6);
    // Observed runtime 2x the model's own prediction: relative error 1/2
    // (the observed runtimes here are far above the 1-second floor).
    const auto predicted = client.predict(key, run);
    ASSERT_TRUE(predicted.ok()) << predicted.error_text();
    run.runtime_s = 2.0 * predicted.value();
    const double err = std::abs(predicted.value() - run.runtime_s) /
                       std::max(std::abs(run.runtime_s), 1.0);
    want_ewma = i == 0 ? err : drift.ewma_alpha * err + (1.0 - drift.ewma_alpha) * want_ewma;

    const auto obs = client.report_run(key, run);
    ASSERT_TRUE(obs.ok()) << obs.error_text();
    EXPECT_EQ(obs.value().reports, static_cast<std::uint64_t>(i) + 1);
    EXPECT_NEAR(obs.value().error_ewma, want_ewma, 1e-9);
    EXPECT_FALSE(obs.value().refit_triggered);
  }

  // The wire metrics carry the drift counters the monitor accumulated.
  const auto metrics = client.metrics(key);
  ASSERT_TRUE(metrics.ok()) << metrics.error_text();
  EXPECT_EQ(metrics.value().drift_reports, 10u);
  EXPECT_EQ(metrics.value().drift_refits, 0u);
  EXPECT_NEAR(metrics.value().drift_error_ewma, want_ewma, 1e-9);
  EXPECT_EQ(metrics.value().reductions, 0u);
  client.close();
}

TEST(Loopback, DriftTriggeredReducedRefitLandsOverTheWire) {
  serve::DriftOptions drift;
  drift.threshold = 0.4;
  drift.min_reports = 10;
  drift.finetune = quick_finetune();
  Loopback loop(drift);
  const serve::ModelKey key{"sgd", "driftrefit"};
  NetClient client;
  loop.connect(client);
  ASSERT_TRUE(client.publish(key, *loop.model).ok());

  // Bound the triggered fine-tune through the entry's reduction config.
  reduce::ReductionConfig reduction;
  reduction.policy = reduce::ReductionPolicy::kCoverage;
  reduction.budget = 6;
  ASSERT_TRUE(
      loop.registry.set_reduction(loop.registry.find(key).unwrap(), reduction).ok());

  // Skewed runtimes (3x the prediction) until the monitor fires.
  bool triggered = false;
  for (int i = 0; i < 40 && !triggered; ++i) {
    data::JobRun run = loop.query(1 + i % 6);
    const auto predicted = client.predict(key, run);
    ASSERT_TRUE(predicted.ok());
    run.runtime_s = 3.0 * predicted.value();
    const auto obs = client.report_run(key, run);
    ASSERT_TRUE(obs.ok()) << obs.error_text();
    triggered = obs.value().refit_triggered;
  }
  ASSERT_TRUE(triggered);

  // The refit runs on a background strand; poll the wire metrics until the
  // reduced swap lands.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  serve::ServeMetrics seen;
  do {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "drift refit never landed";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto metrics = client.metrics(key);
    ASSERT_TRUE(metrics.ok()) << metrics.error_text();
    seen = metrics.value();
  } while (seen.reductions == 0);

  EXPECT_EQ(seen.drift_refits, 1u);
  EXPECT_EQ(seen.reduction_last_kept, reduction.budget);
  EXPECT_GT(seen.reduction_runs_dropped, 0u);
  client.close();
}

TEST(Loopback, RefitOverTheWireMatchesTheInProcessRefit) {
  Loopback loop;
  const serve::ModelKey key{"sgd", "refit"};
  NetClient client;
  loop.connect(client);
  ASSERT_TRUE(client.publish(key, *loop.model).ok());

  const std::vector<data::JobRun> observed(loop.target_runs.begin(),
                                           loop.target_runs.begin() + 3);
  const auto fit = client.refit(key, observed, quick_finetune());
  ASSERT_TRUE(fit.ok()) << fit.error_text();
  EXPECT_GT(fit.value().epochs_run, 0u);

  // The served weights after the wire refit must match the identical refit
  // recipe executed in-process on a fresh registry.
  serve::ModelRegistry local;
  const serve::ModelHandle handle = local.publish(key, *loop.model).unwrap();
  local.refit(handle, observed, quick_finetune()).expect();
  serve::PredictionService local_service(local);
  const data::JobRun probe = loop.query(23);
  const double local_value = local_service.predict(handle, probe).unwrap();
  const auto wire_value = client.predict(key, probe);
  ASSERT_TRUE(wire_value.ok()) << wire_value.error_text();
  EXPECT_EQ(wire_value.value(), local_value);
  client.close();
}

TEST(Loopback, DrainCompletesInFlightTrafficAndRefusesNewConnections) {
  Loopback loop;
  const serve::ModelKey key{"sgd", "drain"};
  NetClient control;
  loop.connect(control);
  ASSERT_TRUE(control.publish(key, *loop.model).ok());
  const double expected = loop.model->predict_one(loop.query(7));

  // Keep several pipelined clients in flight while the drain lands.
  constexpr int kClients = 3;
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> wrong{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      NetClient client;
      loop.connect(client);
      std::vector<std::future<serve::ServeResult<double>>> window;
      while (!stop.load(std::memory_order_relaxed)) {
        window.push_back(client.predict_async(key, loop.query(7)));
        issued.fetch_add(1);
        if (window.size() >= 16) {
          const auto r = window.front().get();
          window.erase(window.begin());
          resolved.fetch_add(1);
          // ok with the right bits, or a typed shutdown — never junk.
          if (r.ok() ? (r.value() != expected)
                     : (r.status() != serve::ServeStatus::kShutdown)) {
            wrong.fetch_add(1);
          }
        }
      }
      for (auto& f : window) {
        const auto r = f.get();
        resolved.fetch_add(1);
        if (r.ok() ? (r.value() != expected)
                   : (r.status() != serve::ServeStatus::kShutdown)) {
          wrong.fetch_add(1);
        }
      }
      client.close();
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto drained = control.drain();
  EXPECT_TRUE(drained.ok()) << drained.error_text();
  stop.store(true);
  for (std::thread& t : threads) t.join();

  // EVERY issued request resolved exactly once; nothing hung or vanished.
  EXPECT_EQ(issued.load(), resolved.load());
  EXPECT_EQ(wrong.load(), 0u);

  loop.server->wait_drained();
  const ServerStats stats = loop.server->stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.connections_open, 0u);

  // The drained server accepts no new work: a fresh connection either fails
  // outright or dies before answering.
  NetClient late;
  std::string error;
  if (late.connect("127.0.0.1", loop.server->port(), error)) {
    const auto r = late.predict(key, loop.query(7));
    EXPECT_FALSE(r.ok());
    late.close();
  }
  control.close();
}

// Regression: tcp_connect used to accept only dotted-quad IPv4 strings, so
// dialing "localhost" failed before a single packet moved.  Hostnames now
// resolve through getaddrinfo (IPv4 preferred, every result tried).
TEST(Loopback, ConnectByHostnameResolvesLocalhost) {
  Loopback loop;
  const serve::ModelKey key{"sgd", "hostname"};

  NetClient client;
  std::string error;
  ASSERT_TRUE(client.connect("localhost", loop.server->port(), error)) << error;
  ASSERT_TRUE(client.publish(key, *loop.model).ok());
  const auto r = client.predict(key, loop.query(9));
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.value(), loop.model->predict_one(loop.query(9)));
  client.close();
}

TEST(Loopback, UnresolvableHostnameNamesTheHostInTheError) {
  NetClient client;
  std::string error;
  // RFC 2606 reserves .invalid: this resolution must fail everywhere.
  EXPECT_FALSE(client.connect("no-such-host.invalid", 7113, error));
  EXPECT_NE(error.find("no-such-host.invalid"), std::string::npos) << error;
}

}  // namespace
}  // namespace bellamy::net
