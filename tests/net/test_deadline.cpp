// Deadline and robustness tests for the socket/client layer:
//
//   * THE acceptance invariant of the deadline work: a peer that accepts a
//     connection and then never responds costs a typed kTimeout within 2x
//     the configured request budget — never a hung caller,
//   * read/write stall budgets on raw sockets return kTimeout,
//   * a write to a peer that closed returns kClosed and cannot kill the
//     process via SIGPIPE,
//   * connect() retries per ClientOptions::dial_retry with seeded backoff.
//
// Runs under ASan/UBSan in CI (label "net").

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"

namespace bellamy::net {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// A listener that ACCEPTS every connection and then sits on it forever —
/// the silent-peer fixture.  Sockets are parked until teardown.
struct SilentPeer {
  SilentPeer() {
    std::string error;
    listener = tcp_listen(0, port, error);
    if (!listener) throw std::runtime_error("listen: " + error);
    acceptor = std::thread([this] {
      while (true) {
        Socket accepted = tcp_accept(listener);
        if (!accepted) break;
        std::lock_guard<std::mutex> lock(mutex);
        parked.push_back(std::move(accepted));
      }
    });
  }

  ~SilentPeer() {
    listener.shutdown_both();
    acceptor.join();
    listener.close();
  }

  Socket listener;
  std::uint16_t port = 0;
  std::thread acceptor;
  std::mutex mutex;
  std::vector<Socket> parked;
};

TEST(Deadline, SilentPeerCostsTypedTimeoutWithinTwiceTheBudget) {
  SilentPeer peer;

  ClientOptions options;
  options.deadlines.connect = milliseconds(2000);
  options.deadlines.request = milliseconds(500);
  NetClient client(options);
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", peer.port, error)) << error;

  const auto t0 = steady_clock::now();
  const auto result = client.predict({"sgd", "ctx"}, data::JobRun{});
  const auto elapsed =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - t0);

  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status(), serve::ServeStatus::kTimeout) << result.message();
  // The acceptance bound: resolved within 2x the configured deadline.
  EXPECT_LT(elapsed.count(), 1000) << "timeout detection took " << elapsed.count() << "ms";
  EXPECT_GE(elapsed.count(), 450);  // and not before the budget elapsed

  client.close();
}

TEST(Deadline, PipelinedRequestsAllTimeOutIndependently) {
  SilentPeer peer;

  ClientOptions options;
  options.deadlines.request = milliseconds(300);
  NetClient client(options);
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", peer.port, error)) << error;

  std::vector<std::future<serve::ServeResult<double>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(client.predict_async({"sgd", "ctx"}, data::JobRun{}));
  }
  const auto t0 = steady_clock::now();
  for (auto& future : futures) {
    const auto result = future.get();
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status(), serve::ServeStatus::kTimeout);
  }
  const auto elapsed =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 1500);  // concurrently, not 8 x 300ms serially

  client.close();
}

TEST(Deadline, ReadStallBudgetReturnsTimeout) {
  SilentPeer peer;
  std::string error;
  Socket sock = tcp_connect("127.0.0.1", peer.port, milliseconds(2000), error);
  ASSERT_TRUE(sock) << error;

  DeadlineOptions deadlines;
  deadlines.read = milliseconds(150);
  sock.set_deadlines(deadlines);

  std::uint8_t byte = 0;
  const auto t0 = steady_clock::now();
  EXPECT_EQ(sock.read_exact(&byte, 1), IoStatus::kTimeout);
  const auto elapsed =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 140);
  EXPECT_LT(elapsed.count(), 1000);
}

TEST(Deadline, WriteStallBudgetReturnsTimeoutWhenThePeerNeverReads) {
  SilentPeer peer;
  std::string error;
  Socket sock = tcp_connect("127.0.0.1", peer.port, milliseconds(2000), error);
  ASSERT_TRUE(sock) << error;

  DeadlineOptions deadlines;
  deadlines.write = milliseconds(150);
  sock.set_deadlines(deadlines);

  // Far more than loopback buffering absorbs: the send buffer fills, the
  // peer never drains it, and the stall budget fires.
  const std::vector<std::uint8_t> payload(64 * 1024 * 1024, 0xAB);
  EXPECT_EQ(sock.write_all(payload.data(), payload.size()), IoStatus::kTimeout);
}

TEST(Deadline, WaitReadableHonorsTimeoutAndForever) {
  SilentPeer peer;
  std::string error;
  Socket sock = tcp_connect("127.0.0.1", peer.port, milliseconds(2000), error);
  ASSERT_TRUE(sock) << error;

  EXPECT_EQ(sock.wait_readable(milliseconds(50)), IoStatus::kTimeout);

  // kWaitForever returns as soon as the stream has an event (here: EOF
  // after a local shutdown from another thread).
  std::thread closer([&] {
    std::this_thread::sleep_for(milliseconds(50));
    sock.shutdown_both();
  });
  EXPECT_EQ(sock.wait_readable(kWaitForever), IoStatus::kOk);
  closer.join();
}

TEST(Robustness, WriteToClosedPeerReturnsClosedWithoutSigpipeDeath) {
  std::string error;
  std::uint16_t port = 0;
  Socket listener = tcp_listen(0, port, error);
  ASSERT_TRUE(listener) << error;

  Socket client = tcp_connect("127.0.0.1", port, milliseconds(2000), error);
  ASSERT_TRUE(client) << error;
  {
    Socket accepted = tcp_accept(listener);
    ASSERT_TRUE(accepted);
    // accepted closes here: the peer is gone.
  }

  // Keep writing until the kernel notices the dead peer (the first write
  // after the RST raises EPIPE — which must surface as kClosed, not as a
  // SIGPIPE that kills the test binary).
  const std::vector<std::uint8_t> chunk(64 * 1024, 0x5A);
  IoStatus status = IoStatus::kOk;
  for (int i = 0; i < 64 && status == IoStatus::kOk; ++i) {
    status = client.write_all(chunk.data(), chunk.size());
  }
  EXPECT_EQ(status, IoStatus::kClosed);
}

TEST(Robustness, ConnectRetriesPerDialPolicy) {
  // Grab an ephemeral port and release it: connecting to it now fails fast.
  std::uint16_t dead_port = 0;
  {
    std::string error;
    Socket listener = tcp_listen(0, dead_port, error);
    ASSERT_TRUE(listener) << error;
  }

  ClientOptions options;
  options.dial_retry.max_attempts = 3;
  options.dial_retry.initial_backoff = milliseconds(1);
  options.dial_retry.max_backoff = milliseconds(4);
  NetClient client(options);
  std::string error;
  EXPECT_FALSE(client.connect("127.0.0.1", dead_port, error));
  EXPECT_EQ(client.dial_retries(), 2u);  // 3 attempts = 2 retries
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace bellamy::net
