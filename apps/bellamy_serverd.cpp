// bellamy_serverd — the TCP serving daemon.
//
//   ./build/apps/bellamy_serverd [--port=N] [--store=DIR] [--workers=N]
//                                [--max-batch=N] [--deadline-us=N]
//                                [--band=MIN:MAX] [--max-queue=N]
//                                [--peer=HOST:PORT]... [--sync-ms=N]
//                                [--io-timeout-ms=N] [--peer-retries=N]
//                                [--auto-persist] [--refit-budget=N]
//                                [--refit-policy=NAME] [--drift-threshold=X]
//
// Wires ModelStore -> ModelRegistry -> PredictionService -> net::ServeServer
// and serves until drained (wire DrainRequest or console `drain`).  With
// --store, every stored model is opened at startup; clients can also publish
// models over the wire (bellamy_loadgen does).  --band enables the adaptive
// flush band.
//
// --peer (repeatable) joins this node to an exchange mesh: a request for a
// model this node lacks pulls it off a peer (or warm-starts from a same-job
// base), and a background anti-entropy loop (period --sync-ms) keeps the
// nodes converged.  --auto-persist writes every successful background-refit
// swap back to the --store directory.
//
// --refit-budget caps the run history every refit fine-tunes on: histories
// above the budget are reduced to a coreset first (--refit-policy picks the
// policy: uniform | recency | coverage | loss-aware; default coverage).  The
// daemon always runs a DriftMonitor so clients can stream observed runtimes
// back over the wire (ReportRun); --drift-threshold=X additionally queues an
// automatic reduced refit when a model's relative-error EWMA crosses X
// (0, the default, just monitors).
//
// --io-timeout-ms bounds every socket stall (server reads/writes AND peer
// dials/calls): a peer or client that goes silent mid-frame costs a typed
// timeout, never a hung thread.  0 (the default) = wait forever.
// --peer-retries is the per-call retry budget against peers (redial +
// exponential backoff); per-peer circuit breakers stop the sync loop from
// hammering a dead node regardless.
//
// stdin is an admin console (type `help`); EOF on stdin keeps serving — the
// daemon can run detached with stdin closed.  Exit code 0 after a graceful
// drain.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exchange/exchange.hpp"
#include "net/net.hpp"
#include "reduce/reduction.hpp"
#include "serve/serve.hpp"

using namespace bellamy;

namespace {

void print_help() {
  std::fprintf(stderr,
               "admin console commands:\n"
               "  stats                                   server counters\n"
               "  stats <job> <context>                   per-model serving metrics\n"
               "  keys                                    registered model keys\n"
               "  set_qos <job> <ctx> <interactive|bulk> <weight> [max_lag_us]\n"
               "  refit <job> <context>                   background reset-to-base refit\n"
               "  erase <job> <context>                   retire a model\n"
               "  sync                                    run one exchange sync round now\n"
               "  exchange                                exchange-layer counters\n"
               "  drain                                   graceful drain, then exit\n"
               "  help                                    this text\n");
}

void print_drift(const serve::ServeMetrics& m) {
  std::fprintf(stderr,
               "  drift ewma %.4f over %llu report(s), %llu auto refit(s)\n"
               "  reductions %llu (last kept %llu, dropped %llu total)\n",
               m.drift_error_ewma, (unsigned long long)m.drift_reports,
               (unsigned long long)m.drift_refits, (unsigned long long)m.reductions,
               (unsigned long long)m.reduction_last_kept,
               (unsigned long long)m.reduction_runs_dropped);
}

void print_metrics(const serve::ServeMetrics& m) {
  std::fprintf(stderr,
               "  requests %llu  responses %llu  batches %llu (full %llu / deadline %llu "
               "/ drain %llu)\n"
               "  queue depth %llu (max %llu)  replicas hit/miss/inval %llu/%llu/%llu\n"
               "  effective deadline %llu us  ewma %.1f us  max lag %llu us  starved %llu\n"
               "  latency p50/p95/p99 %llu/%llu/%llu us over %llu responses\n",
               (unsigned long long)m.requests, (unsigned long long)m.responses,
               (unsigned long long)m.batches, (unsigned long long)m.coalesced,
               (unsigned long long)m.deadline_flushes, (unsigned long long)m.drain_flushes,
               (unsigned long long)m.queue_depth, (unsigned long long)m.max_queue_depth,
               (unsigned long long)m.replica_hits, (unsigned long long)m.replica_misses,
               (unsigned long long)m.replica_invalidations,
               (unsigned long long)m.effective_flush_deadline_us, m.interarrival_ewma_us,
               (unsigned long long)m.max_dispatch_lag_us,
               (unsigned long long)m.starved_flushes, (unsigned long long)m.latency_p50_us,
               (unsigned long long)m.latency_p95_us, (unsigned long long)m.latency_p99_us,
               (unsigned long long)m.latency_count);
}

/// Console loop; returns when stdin hits EOF (keep serving) or after `drain`.
void console_loop(net::ServeServer& server, serve::ModelRegistry& registry,
                  serve::PredictionService& service, serve::DriftMonitor* drift,
                  exchange::ExchangeRegistry* exchange) {
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    if (cmd == "help") {
      print_help();
    } else if (cmd == "keys") {
      for (const serve::ModelKey& key : registry.keys()) {
        std::fprintf(stderr, "  %s\n", key.str().c_str());
      }
    } else if (cmd == "stats") {
      std::string job, context;
      if (in >> job >> context) {
        const auto handle = registry.find({job, context});
        if (!handle.ok()) {
          std::fprintf(stderr, "  %s\n", handle.error_text().c_str());
          continue;
        }
        const auto metrics = service.metrics(handle.value());
        if (!metrics.ok()) {
          std::fprintf(stderr, "  %s\n", metrics.error_text().c_str());
          continue;
        }
        // Same annotation the wire MetricsResponse gets: drift counters from
        // the monitor, reduction counters from the registry entry.
        serve::ServeMetrics m = metrics.value();
        if (drift != nullptr) drift->annotate(handle.value(), m);
        const auto [reductions, dropped] = registry.reduction_counters(handle.value());
        m.reductions = reductions;
        m.reduction_runs_dropped = dropped;
        m.reduction_last_kept = registry.last_reduction(handle.value()).kept_runs;
        print_metrics(m);
        print_drift(m);
      } else {
        const net::ServerStats s = server.stats();
        std::fprintf(stderr,
                     "  connections %llu open / %llu accepted; frames %llu in / %llu "
                     "out; %llu protocol errors; %zu models%s\n",
                     (unsigned long long)s.connections_open,
                     (unsigned long long)s.connections_accepted,
                     (unsigned long long)s.frames_in, (unsigned long long)s.frames_out,
                     (unsigned long long)s.protocol_errors, registry.size(),
                     s.draining ? "; DRAINING" : "");
      }
    } else if (cmd == "set_qos") {
      std::string job, context, cls;
      double weight = 1.0;
      std::uint64_t max_lag_us = 0;
      if (!(in >> job >> context >> cls >> weight)) {
        std::fprintf(stderr, "  usage: set_qos <job> <ctx> <interactive|bulk> <weight> "
                             "[max_lag_us]\n");
        continue;
      }
      in >> max_lag_us;
      serve::HandleQos qos;
      qos.qos = cls == "bulk" ? serve::QosClass::kBulk : serve::QosClass::kInteractive;
      qos.weight = weight;
      qos.max_lag = std::chrono::microseconds(max_lag_us);
      const auto handle = registry.find({job, context});
      const auto result =
          handle.ok() ? service.set_qos(handle.value(), qos)
                      : serve::ServeResult<serve::Unit>::failure(handle.status(),
                                                                 handle.message());
      std::fprintf(stderr, "  %s\n", result.ok() ? "ok" : result.error_text().c_str());
    } else if (cmd == "refit") {
      std::string job, context;
      if (!(in >> job >> context)) {
        std::fprintf(stderr, "  usage: refit <job> <context>\n");
        continue;
      }
      const auto handle = registry.find({job, context});
      if (!handle.ok()) {
        std::fprintf(stderr, "  %s\n", handle.error_text().c_str());
        continue;
      }
      const std::string name = job + "/" + context;
      registry.refit_async(handle.value(), {}, core::FineTuneConfig{},
                           core::ReuseStrategy::kPartialUnfreeze,
                           [name](const serve::ServeResult<core::FineTuneResult>& r) {
                             std::fprintf(stderr, "  refit %s: %s\n", name.c_str(),
                                          r.ok() ? "done" : r.error_text().c_str());
                           });
      std::fprintf(stderr, "  refit %s queued\n", name.c_str());
    } else if (cmd == "erase") {
      std::string job, context;
      if (!(in >> job >> context)) {
        std::fprintf(stderr, "  usage: erase <job> <context>\n");
        continue;
      }
      const auto handle = registry.find({job, context});
      const auto result = handle.ok()
                              ? registry.erase(handle.value())
                              : serve::ServeResult<serve::Unit>::failure(handle.status(),
                                                                         handle.message());
      std::fprintf(stderr, "  %s\n", result.ok() ? "ok" : result.error_text().c_str());
    } else if (cmd == "sync") {
      if (exchange == nullptr) {
        std::fprintf(stderr, "  no peers configured (--peer=HOST:PORT)\n");
        continue;
      }
      exchange->sync_now();
      std::fprintf(stderr, "  sync round done; catalog %llu entries\n",
                   (unsigned long long)exchange->stats().catalog_size);
    } else if (cmd == "exchange") {
      if (exchange == nullptr) {
        std::fprintf(stderr, "  no peers configured (--peer=HOST:PORT)\n");
        continue;
      }
      const exchange::ExchangeStats x = exchange->stats();
      std::fprintf(stderr,
                   "  catalog %llu  peers %zu  pulls served/completed %llu/%llu\n"
                   "  warm starts %llu  sync rounds %llu  conflicts skipped %llu\n"
                   "  peer failures %llu  breaker skips %llu\n",
                   (unsigned long long)x.catalog_size, exchange->peer_count(),
                   (unsigned long long)x.pulls_served,
                   (unsigned long long)x.pulls_completed,
                   (unsigned long long)x.warm_starts, (unsigned long long)x.sync_rounds,
                   (unsigned long long)x.conflicts_skipped,
                   (unsigned long long)x.peer_failures,
                   (unsigned long long)x.breaker_skips);
      for (const exchange::PeerStats& p : x.peers) {
        std::fprintf(stderr,
                     "  peer %s: breaker %s  ok %llu  fail %llu  skip %llu  trips %llu  "
                     "probes %llu  retries %llu\n",
                     p.name.c_str(), p.breaker_state, (unsigned long long)p.successes,
                     (unsigned long long)p.failures, (unsigned long long)p.skips,
                     (unsigned long long)p.trips, (unsigned long long)p.probes,
                     (unsigned long long)p.retries);
      }
    } else if (cmd == "drain") {
      std::fprintf(stderr, "draining...\n");
      server.begin_drain();
      return;
    } else {
      std::fprintf(stderr, "unknown command '%s' (try help)\n", cmd.c_str());
    }
  }
  std::fprintf(stderr, "stdin closed; serving until a wire drain\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7113;
  std::string store_dir;
  serve::ServeOptions options;
  options.workers = 2;
  std::vector<std::pair<std::string, std::uint16_t>> peers;
  exchange::ExchangeOptions exchange_options;
  bool auto_persist = false;
  int io_timeout_ms = 0;
  int peer_retries = 2;
  reduce::ReductionConfig reduction;
  reduction.policy = reduce::ReductionPolicy::kCoverage;  // used iff a budget is set
  serve::DriftOptions drift_options;

  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<std::uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--store=", 8) == 0) {
      store_dir = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      options.workers = std::max(1, std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--max-batch=", 12) == 0) {
      options.max_batch = std::max(1, std::atoi(argv[i] + 12));
    } else if (std::strncmp(argv[i], "--max-queue=", 12) == 0) {
      options.max_queue = std::max(1, std::atoi(argv[i] + 12));
    } else if (std::strncmp(argv[i], "--deadline-us=", 14) == 0) {
      options.flush_deadline = std::chrono::microseconds(std::atoi(argv[i] + 14));
    } else if (std::strncmp(argv[i], "--band=", 7) == 0) {
      int lo = 0, hi = 0;
      if (std::sscanf(argv[i] + 7, "%d:%d", &lo, &hi) != 2 || lo <= 0 || hi < lo) {
        std::fprintf(stderr, "--band expects MIN:MAX microseconds\n");
        return 2;
      }
      options.flush_deadline_min = std::chrono::microseconds(lo);
      options.flush_deadline_max = std::chrono::microseconds(hi);
    } else if (std::strncmp(argv[i], "--peer=", 7) == 0) {
      const std::string spec = argv[i] + 7;
      const auto colon = spec.rfind(':');
      const int peer_port =
          colon == std::string::npos ? 0 : std::atoi(spec.c_str() + colon + 1);
      if (colon == std::string::npos || colon == 0 || peer_port <= 0 ||
          peer_port > 65535) {
        std::fprintf(stderr, "--peer expects HOST:PORT, got '%s'\n", spec.c_str());
        return 2;
      }
      peers.emplace_back(spec.substr(0, colon), static_cast<std::uint16_t>(peer_port));
    } else if (std::strncmp(argv[i], "--sync-ms=", 10) == 0) {
      exchange_options.sync_interval =
          std::chrono::milliseconds(std::max(1, std::atoi(argv[i] + 10)));
    } else if (std::strncmp(argv[i], "--io-timeout-ms=", 16) == 0) {
      io_timeout_ms = std::max(0, std::atoi(argv[i] + 16));
    } else if (std::strncmp(argv[i], "--peer-retries=", 15) == 0) {
      peer_retries = std::max(0, std::atoi(argv[i] + 15));
    } else if (std::strcmp(argv[i], "--auto-persist") == 0) {
      auto_persist = true;
    } else if (std::strncmp(argv[i], "--refit-budget=", 15) == 0) {
      reduction.budget = static_cast<std::size_t>(std::max(0, std::atoi(argv[i] + 15)));
    } else if (std::strncmp(argv[i], "--refit-policy=", 15) == 0) {
      const auto parsed = reduce::parse_policy(argv[i] + 15);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "--refit-policy expects uniform | recency | coverage | loss-aware, "
                     "got '%s'\n",
                     argv[i] + 15);
        return 2;
      }
      reduction.policy = *parsed;
    } else if (std::strncmp(argv[i], "--drift-threshold=", 18) == 0) {
      drift_options.threshold = std::atof(argv[i] + 18);
      if (drift_options.threshold < 0.0) {
        std::fprintf(stderr, "--drift-threshold must be >= 0\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--store=DIR] [--workers=N] [--max-batch=N]\n"
                   "          [--deadline-us=N] [--band=MIN:MAX] [--max-queue=N]\n"
                   "          [--peer=HOST:PORT]... [--sync-ms=N] [--io-timeout-ms=N]\n"
                   "          [--peer-retries=N] [--auto-persist] [--refit-budget=N]\n"
                   "          [--refit-policy=NAME] [--drift-threshold=X]\n",
                   argv[0]);
      return 2;
    }
  }

  std::shared_ptr<core::ModelStore> store;
  if (!store_dir.empty()) store = std::make_shared<core::ModelStore>(store_dir);
  serve::ModelRegistry registry = store ? serve::ModelRegistry(store) : serve::ModelRegistry();
  // Before any model is opened/published: entries inherit the default
  // ReductionConfig at creation time.
  if (reduction.budget > 0) registry.set_default_reduction(reduction);
  if (store) {
    for (const std::string& key : store->list()) {
      const auto slash = key.find('/');
      const serve::ModelKey model_key{key.substr(0, slash), key.substr(slash + 1)};
      const auto opened = registry.open(model_key);
      std::fprintf(stderr, "open %s: %s\n", key.c_str(),
                   opened.ok() ? "ok" : opened.error_text().c_str());
    }
  }

  if (auto_persist) {
    if (!store) {
      std::fprintf(stderr, "--auto-persist needs --store=DIR\n");
      return 2;
    }
    registry.set_auto_persist(true);
  }

  serve::PredictionService service(registry, options);

  // The exchange node answers the wire's exchange messages (via
  // ServerOptions::peer_service) and drives this node's outbound gossip; it
  // must outlive the server AND any in-flight refit.  It exists even with
  // zero --peer flags — a node must ANSWER digests and pulls to seed peers
  // that dial it; only the outbound sync loop needs peers.
  exchange::ExchangeRegistry exchange_node(registry, exchange_options);
  exchange::TransportOptions transport_options;
  transport_options.deadlines.connect = std::chrono::milliseconds(io_timeout_ms);
  transport_options.deadlines.read = std::chrono::milliseconds(io_timeout_ms);
  transport_options.deadlines.write = std::chrono::milliseconds(io_timeout_ms);
  transport_options.deadlines.request = std::chrono::milliseconds(io_timeout_ms);
  transport_options.retry.max_attempts = 1 + peer_retries;
  for (const auto& [host, peer_port] : peers) {
    exchange_node.add_peer(
        std::make_shared<exchange::TcpTransport>(host, peer_port, transport_options));
  }

  // Always present so ReportRun works even without --drift-threshold
  // (threshold 0 = monitor only); must outlive the server and any refit it
  // queues.
  serve::DriftMonitor drift_monitor(registry, drift_options);

  net::ServerOptions server_options;
  server_options.port = port;
  server_options.peer_service = &exchange_node;
  server_options.drift_monitor = &drift_monitor;
  server_options.deadlines.read = std::chrono::milliseconds(io_timeout_ms);
  server_options.deadlines.write = std::chrono::milliseconds(io_timeout_ms);
  net::ServeServer server(registry, service, server_options);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "cannot listen on port %u: %s\n", port, error.c_str());
    return 1;
  }
  if (!peers.empty()) exchange_node.start_sync();
  std::fprintf(stderr, "bellamy_serverd: serving %zu model(s) on 127.0.0.1:%u (%zu "
                       "dispatcher worker(s), max_batch %zu, %zu peer(s))\n",
               registry.size(), server.port(), options.workers, options.max_batch,
               exchange_node.peer_count());
  if (reduction.budget > 0) {
    std::fprintf(stderr, "bellamy_serverd: refits reduce history via %s @ budget %zu\n",
                 reduce::policy_name(reduction.policy), reduction.budget);
  }
  std::fprintf(stderr, "bellamy_serverd: drift monitor %s (threshold %.3f)\n",
               drift_options.threshold > 0.0 ? "auto-refit" : "monitor-only",
               drift_options.threshold);

  // The console thread may sit in getline() forever when nothing arrives on
  // stdin; it is detached so a wire-initiated drain can exit the process.
  std::thread console(
      [&] { console_loop(server, registry, service, &drift_monitor, &exchange_node); });
  console.detach();

  server.wait_drained();
  // Stop gossip before the server: a sync round mid-teardown would dial
  // peers and publish into a registry the server still references.
  exchange_node.stop();
  server.stop();
  std::fprintf(stderr, "bellamy_serverd: drained, exiting\n");
  std::fflush(nullptr);
  // _Exit instead of return: the detached console thread may still be parked
  // in getline() holding references to the stack objects above; skipping
  // their destructors (everything is already stopped and joined) is safer
  // than racing it.
  std::_Exit(0);
}
