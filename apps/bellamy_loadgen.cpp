// bellamy_loadgen — load generator + acceptance client for bellamy_serverd.
//
//   ./build/apps/bellamy_loadgen [--host=HOST] [--port=N] [--clients=N]
//                                [--requests=N] [--probes=N] [--json=PATH|-]
//                                [--drain] [--no-publish] [--drain-only]
//                                [--drift-smoke]
//
// Replays the bench_serve scenarios over REAL sockets:
//
//   1. Pre-trains the bench model locally (deterministic recipe identical to
//      bench_serve), publishes it over the wire, and verifies every served
//      value BIT-IDENTICALLY against the local model — the checkpoint text
//      round-trip plus the service's coalescing transparency, now proven
//      end-to-end through TCP.
//   2. Throughput cell: N pipelined client connections, closed-loop async
//      windows — reported as net_predict_per_s.
//   3. QoS scenario: three bulk-flood connections saturate a kBulk model
//      while a paced probe connection measures a kInteractive one; QoS is
//      configured over the wire, client-side p50/p99 come from the probe's
//      own clock, and SERVER-side p50/p95/p99 come from the new ServeMetrics
//      latency percentiles fetched via MetricsRequest.
//
// --json emits a document scripts/bench-compare.py understands (the *_per_s
// keys gate on throughput; *_us latency keys are informational — wall-clock
// latency on shared runners is too noisy to gate).  --drain gracefully
// drains the server afterwards: the CI loopback smoke runs
// serverd + loadgen --drain as one self-terminating cycle.
//
// --no-publish runs the same scenarios WITHOUT publishing first: the server
// must already have the models — or pull them off an exchange peer on the
// first miss.  Since the local reference model is deterministic, the
// bit-identical check then proves the peer-exchanged checkpoints exactly
// (the two-node CI smoke publishes at node A and loadgens node B with
// --no-publish).  --drain-only just drains the server and exits — used to
// shut the remaining node of a mesh down.
//
// --drift-smoke replaces the load scenarios with the drift-monitor
// acceptance: stream ACCURATE observed runtimes first (the monitor must stay
// quiet), then runtimes skewed to 3x the model's prediction, and poll the
// wire metrics until the server's drift-triggered reduced refit lands.
// Exits non-zero when a stable report triggers a refit, when the skew never
// does, or when the refit does not land.  Run it against a serverd started
// with --drift-threshold (and typically --refit-budget).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "net/net.hpp"
#include "serve/serve.hpp"
#include "util/timer.hpp"

using namespace bellamy;

namespace {

constexpr std::size_t kWindow = 32;  ///< async requests in flight per connection

struct QuantileSet {
  double p50 = 0, p99 = 0;
};

QuantileSet quantiles(std::vector<double>& sorted_us) {
  std::sort(sorted_us.begin(), sorted_us.end());
  QuantileSet q;
  if (sorted_us.empty()) return q;
  q.p50 = sorted_us[sorted_us.size() / 2];
  q.p99 = sorted_us[(sorted_us.size() * 99) / 100];
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7113;
  std::size_t clients = 4;
  std::size_t requests = 512;
  std::size_t probes = 150;
  std::string json_path;
  bool drain = false;
  bool publish = true;
  bool drain_only = false;
  bool drift_smoke = false;
  int io_timeout_ms = 0;

  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--host=", 7) == 0) {
      host = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<std::uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::max(1, std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::max(1, std::atoi(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--probes=", 9) == 0) {
      probes = std::max(10, std::atoi(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--io-timeout-ms=", 16) == 0) {
      io_timeout_ms = std::max(0, std::atoi(argv[i] + 16));
    } else if (std::strcmp(argv[i], "--drain") == 0) {
      drain = true;
    } else if (std::strcmp(argv[i], "--no-publish") == 0) {
      publish = false;
    } else if (std::strcmp(argv[i], "--drain-only") == 0) {
      drain_only = true;
    } else if (std::strcmp(argv[i], "--drift-smoke") == 0) {
      drift_smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host=HOST] [--port=N] [--clients=N] [--requests=N]\n"
                   "          [--probes=N] [--json=PATH|-] [--io-timeout-ms=N] [--drain]\n"
                   "          [--no-publish] [--drain-only] [--drift-smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  // Every connection this process opens shares the same deadline budget:
  // connect, per-op socket stalls, and the end-to-end request timeout.
  net::ClientOptions client_options;
  client_options.deadlines.connect = std::chrono::milliseconds(io_timeout_ms);
  client_options.deadlines.read = std::chrono::milliseconds(io_timeout_ms);
  client_options.deadlines.write = std::chrono::milliseconds(io_timeout_ms);
  client_options.deadlines.request = std::chrono::milliseconds(io_timeout_ms);

  if (drain_only) {  // no model needed just to shut a node down
    net::NetClient control(client_options);
    std::string error;
    if (!control.connect(host, port, error)) {
      std::fprintf(stderr, "cannot connect to %s:%u: %s\n", host.c_str(), port,
                   error.c_str());
      return 1;
    }
    const auto drained = control.drain();
    std::fprintf(stderr, "drain: %s\n",
                 drained.ok() ? "ok" : drained.error_text().c_str());
    control.close();
    return drained.ok() ? 0 : 1;
  }

  // Deterministic bench model — the same recipe as bench_serve, so numbers
  // are comparable between the in-process and over-the-wire benches.
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 71;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sgd", 6);
  core::BellamyModel model(core::BellamyConfig{}, /*seed=*/71);
  core::PreTrainConfig pre;
  pre.epochs = 60;
  core::pretrain(model, history.runs(), pre);
  const data::JobRun context_template = history.runs().front();

  std::vector<double> expected_by_scaleout(61, 0.0);
  for (int x = 1; x <= 60; ++x) {
    data::JobRun q = context_template;
    q.scale_out = x;
    expected_by_scaleout[static_cast<std::size_t>(x)] = model.predict_one(q);
  }

  const serve::ModelKey bench_key{"sgd", "net-bench"};
  const serve::ModelKey bulk_key{"sgd", "net-bulk"};
  const serve::ModelKey interactive_key{"sgd", "net-interactive"};

  net::NetClient control(client_options);
  std::string error;
  if (!control.connect(host, port, error)) {
    std::fprintf(stderr, "cannot connect to %s:%u: %s\n", host.c_str(), port,
                 error.c_str());
    return 1;
  }
  if (publish) {
    for (const serve::ModelKey& key : {bench_key, bulk_key, interactive_key}) {
      const auto published = control.publish(key, model);
      if (!published.ok()) {
        std::fprintf(stderr, "publish %s failed: %s\n", key.str().c_str(),
                     published.error_text().c_str());
        return 1;
      }
    }
    std::fprintf(stderr, "bellamy_loadgen: published 3 models to %s:%u\n", host.c_str(),
                 port);
  } else {
    std::fprintf(stderr, "bellamy_loadgen: --no-publish, expecting %s:%u to resolve "
                         "the models (locally or via its exchange peers)\n",
                 host.c_str(), port);
  }

  if (drift_smoke) {
    // Phase 1 — stable traffic: observed runtime == the model's own
    // prediction.  A refit here means the monitor fires on healthy clusters.
    for (std::size_t i = 0; i < 16; ++i) {
      data::JobRun run = history.runs()[i % history.runs().size()];
      run.runtime_s = model.predict_one(run);
      const auto obs = control.report_run(bench_key, run);
      if (!obs.ok()) {
        std::fprintf(stderr, "report_run failed: %s\n", obs.error_text().c_str());
        return 1;
      }
      if (obs.value().refit_triggered) {
        std::fprintf(stderr, "drift smoke: STABLE report %zu triggered a refit "
                             "(ewma %.4f)\n",
                     i, obs.value().error_ewma);
        return 1;
      }
    }
    std::fprintf(stderr, "drift smoke: 16 stable reports, no refit (correct)\n");

    // Phase 2 — injected drift: observed runtimes 3x the prediction push the
    // relative-error EWMA towards 2/3; the server must trigger exactly once.
    bool triggered = false;
    std::size_t skewed = 0;
    for (; skewed < 64 && !triggered; ++skewed) {
      data::JobRun run = history.runs()[skewed % history.runs().size()];
      run.runtime_s = 3.0 * model.predict_one(run);
      const auto obs = control.report_run(bench_key, run);
      if (!obs.ok()) {
        std::fprintf(stderr, "report_run failed: %s\n", obs.error_text().c_str());
        return 1;
      }
      triggered = obs.value().refit_triggered;
    }
    if (!triggered) {
      std::fprintf(stderr, "drift smoke: 64 skewed reports never triggered a refit "
                           "(is the server running with --drift-threshold?)\n");
      return 1;
    }
    std::fprintf(stderr, "drift smoke: refit triggered after %zu skewed report(s)\n",
                 skewed);

    // Phase 3 — the background refit must LAND.  drift_refits increments at
    // queue time; the reduction counter only moves once the refit strand has
    // actually reduced the window and swapped, so THAT is what we poll (the
    // smoke therefore requires a serverd running with --refit-budget).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
    serve::ServeMetrics seen;
    while (true) {
      const auto metrics = control.metrics(bench_key);
      if (!metrics.ok()) {
        std::fprintf(stderr, "metrics failed: %s\n", metrics.error_text().c_str());
        return 1;
      }
      seen = metrics.value();
      if (seen.drift_refits >= 1 && seen.reductions >= 1) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "drift smoke: triggered refit never landed\n");
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr,
                 "drift smoke: refit landed (drift ewma %.4f over %llu reports; "
                 "%llu reduction(s), last kept %llu, dropped %llu)\n",
                 seen.drift_error_ewma, (unsigned long long)seen.drift_reports,
                 (unsigned long long)seen.reductions,
                 (unsigned long long)seen.reduction_last_kept,
                 (unsigned long long)seen.reduction_runs_dropped);

    if (drain) {
      const auto drained = control.drain();
      std::fprintf(stderr, "drain: %s\n",
                   drained.ok() ? "ok" : drained.error_text().c_str());
      if (!drained.ok()) return 1;
    }
    control.close();
    return 0;
  }

  std::atomic<bool> all_identical{true};

  // ---- throughput cell: N pipelined connections, closed-loop windows ----
  double predict_per_s = 0.0;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    util::Timer timer;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        net::NetClient client(client_options);
        std::string err;
        if (!client.connect(host, port, err)) {
          std::fprintf(stderr, "client %zu: connect failed: %s\n", c, err.c_str());
          all_identical.store(false);
          return;
        }
        std::deque<std::pair<int, std::future<serve::ServeResult<double>>>> window;
        auto drain_one = [&] {
          auto [scale_out, future] = std::move(window.front());
          window.pop_front();
          const serve::ServeResult<double> r = future.get();
          if (!r.ok() ||
              r.value() != expected_by_scaleout[static_cast<std::size_t>(scale_out)]) {
            all_identical.store(false);
          }
        };
        for (std::size_t i = 0; i < requests; ++i) {
          data::JobRun q = context_template;
          q.scale_out = static_cast<int>(1 + (c * requests + i) % 60);
          window.emplace_back(q.scale_out, client.predict_async(bench_key, q));
          if (window.size() >= kWindow) drain_one();
        }
        while (!window.empty()) drain_one();
        client.close();
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = timer.seconds();
    predict_per_s =
        static_cast<double>(clients * requests) / std::max(seconds, 1e-12);
    std::fprintf(stderr,
                 "throughput: %zu clients x %zu requests -> %.0f predictions/s over "
                 "TCP (bit-identical: %s)\n",
                 clients, requests, predict_per_s,
                 all_identical.load() ? "yes" : "NO");
  }

  // ---- QoS scenario: saturated bulk lanes vs a paced interactive probe ----
  serve::HandleQos bulk_qos;
  bulk_qos.qos = serve::QosClass::kBulk;
  bulk_qos.weight = 0.25;
  bulk_qos.max_lag = std::chrono::microseconds(20000);  // aging cap (PR 6)
  serve::HandleQos interactive_qos;
  interactive_qos.qos = serve::QosClass::kInteractive;
  interactive_qos.weight = 4.0;
  if (!control.set_qos(bulk_key, bulk_qos).ok() ||
      !control.set_qos(interactive_key, interactive_qos).ok()) {
    std::fprintf(stderr, "set_qos over the wire failed\n");
    return 1;
  }

  auto probe_pass = [&](std::vector<double>& out_us) {
    net::NetClient probe(client_options);
    std::string err;
    if (!probe.connect(host, port, err)) {
      all_identical.store(false);
      return;
    }
    out_us.clear();
    out_us.reserve(probes);
    for (std::size_t i = 0; i < probes; ++i) {
      data::JobRun q = context_template;
      q.scale_out = static_cast<int>(1 + i % 60);
      const auto start = std::chrono::steady_clock::now();
      const auto r = probe.predict(interactive_key, q);
      const auto end = std::chrono::steady_clock::now();
      if (!r.ok() ||
          r.value() != expected_by_scaleout[static_cast<std::size_t>(q.scale_out)]) {
        all_identical.store(false);
      }
      out_us.push_back(std::chrono::duration<double, std::micro>(end - start).count());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    probe.close();
  };

  std::vector<double> lat_us;
  probe_pass(lat_us);
  const QuantileSet unloaded = quantiles(lat_us);

  std::atomic<bool> stop_flood{false};
  std::atomic<std::uint64_t> bulk_ok{0};
  std::vector<std::thread> flood;
  for (int t = 0; t < 3; ++t) {
    flood.emplace_back([&, t] {
      net::NetClient client(client_options);
      std::string err;
      if (!client.connect(host, port, err)) return;
      std::deque<std::future<serve::ServeResult<double>>> window;
      std::size_t i = static_cast<std::size_t>(t) * 1000;
      while (!stop_flood.load(std::memory_order_relaxed)) {
        data::JobRun q = context_template;
        q.scale_out = static_cast<int>(1 + i++ % 60);
        window.push_back(client.predict_async(bulk_key, q));
        if (window.size() >= 48) {
          if (window.front().get().ok()) bulk_ok.fetch_add(1, std::memory_order_relaxed);
          window.pop_front();
        }
      }
      while (!window.empty()) {
        if (window.front().get().ok()) bulk_ok.fetch_add(1, std::memory_order_relaxed);
        window.pop_front();
      }
      client.close();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  probe_pass(lat_us);
  stop_flood.store(true);
  for (std::thread& t : flood) t.join();
  const QuantileSet loaded = quantiles(lat_us);

  const auto interactive_metrics = control.metrics(interactive_key);
  const auto bulk_metrics = control.metrics(bulk_key);
  if (!interactive_metrics.ok() || !bulk_metrics.ok()) {
    std::fprintf(stderr, "metrics over the wire failed\n");
    return 1;
  }
  const serve::ServeMetrics& im = interactive_metrics.value();
  const serve::ServeMetrics& bm = bulk_metrics.value();

  std::fprintf(stderr,
               "qos: interactive p50/p99 %.0f/%.0f us unloaded -> %.0f/%.0f us under "
               "bulk saturation (%llu bulk responses)\n"
               "     server-side interactive p50/p95/p99 %llu/%llu/%llu us over %llu "
               "responses; bulk p99 %llu us, max dispatch lag %llu us\n",
               unloaded.p50, unloaded.p99, loaded.p50, loaded.p99,
               (unsigned long long)bulk_ok.load(), (unsigned long long)im.latency_p50_us,
               (unsigned long long)im.latency_p95_us, (unsigned long long)im.latency_p99_us,
               (unsigned long long)im.latency_count, (unsigned long long)bm.latency_p99_us,
               (unsigned long long)bm.max_dispatch_lag_us);
  std::fprintf(stderr, "bit-identical to the local model: %s\n",
               all_identical.load() ? "yes" : "NO");

  if (!json_path.empty()) {
    std::FILE* f = json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      std::fprintf(
          f,
          "{\n"
          "  \"clients\": %zu,\n  \"requests_per_client\": %zu,\n"
          "  \"identical\": %s,\n  \"net_predict_per_s\": %.0f,\n"
          "  \"qos\": {\n"
          "    \"interactive_unloaded_p50_us\": %.1f, \"interactive_unloaded_p99_us\": "
          "%.1f,\n"
          "    \"interactive_loaded_p50_us\": %.1f, \"interactive_loaded_p99_us\": %.1f,\n"
          "    \"bulk_responses\": %llu,\n"
          "    \"server\": {\n"
          "      \"interactive_latency_p50_us\": %llu, \"interactive_latency_p95_us\": "
          "%llu,\n"
          "      \"interactive_latency_p99_us\": %llu, \"interactive_latency_count\": "
          "%llu,\n"
          "      \"bulk_latency_p99_us\": %llu, \"interactive_starved_flushes\": %llu,\n"
          "      \"bulk_max_dispatch_lag_us\": %llu\n"
          "    }\n  }\n}\n",
          clients, requests, all_identical.load() ? "true" : "false", predict_per_s,
          unloaded.p50, unloaded.p99, loaded.p50, loaded.p99,
          (unsigned long long)bulk_ok.load(), (unsigned long long)im.latency_p50_us,
          (unsigned long long)im.latency_p95_us, (unsigned long long)im.latency_p99_us,
          (unsigned long long)im.latency_count, (unsigned long long)bm.latency_p99_us,
          (unsigned long long)im.starved_flushes,
          (unsigned long long)bm.max_dispatch_lag_us);
      if (f != stdout) {
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
      }
    }
  }

  if (drain) {
    const auto drained = control.drain();
    std::fprintf(stderr, "drain: %s\n",
                 drained.ok() ? "ok" : drained.error_text().c_str());
  }
  control.close();
  return all_identical.load() ? 0 : 1;
}
