// Resource selection (the paper's motivating use case, §I/§V): given a
// runtime target for a dataflow job in a concrete context, use runtime
// models to choose the smallest cluster that meets the target — and compare
// what Bellamy picks against the NNLS baseline and the ground truth.
//
// Bellamy runs through the serve facade here: the pre-trained model is
// published into a ModelRegistry and queried through the micro-batching
// PredictionService, with serve::ServingModel adapting the handle back to
// the data::RuntimeModel interface select_scaleout expects.

#include <cstdio>

#include "baselines/ernest.hpp"
#include "core/resource_selector.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "serve/serve.hpp"

using namespace bellamy;

int main() {
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 23;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("kmeans", 8);
  const auto groups = history.contexts();
  const auto& target_ctx = groups.front();
  const data::Dataset rest = history.exclude_context(target_ctx.key);

  // Only three observed runs in the target context — a realistic budget.
  std::vector<data::JobRun> observed;
  for (std::size_t i = 0; i < target_ctx.runs.size() && observed.size() < 3; i += 7) {
    observed.push_back(target_ctx.runs[i]);
  }

  // Bellamy: pre-train on the other contexts, publish, refit on the 3 runs.
  core::BellamyModel pretrained(core::BellamyConfig{}, 4);
  core::PreTrainConfig pre;
  pre.epochs = 300;
  core::pretrain(pretrained, rest.runs(), pre);

  serve::ModelRegistry registry;
  serve::PredictionService service(registry);
  const serve::ModelHandle handle =
      registry.publish({"kmeans", target_ctx.key}, pretrained).unwrap();

  core::FineTuneConfig fine;
  fine.max_epochs = 600;
  fine.patience = 300;
  serve::ServingModel bellamy(registry, service, handle, fine);
  bellamy.fit(observed);  // registry refit + hot-swap behind the adapter

  // Baseline: NNLS on the same three runs.
  baselines::ErnestModel nnls;
  nnls.fit(observed);

  const std::vector<int> candidates{2, 4, 6, 8, 10, 12};
  data::JobRun tmpl = target_ctx.runs.front();
  const double target_s = target_ctx.mean_runtime_at(8) * 1.05;  // achievable target
  std::printf("runtime target: %.0f s for context %s\n\n", target_s, target_ctx.key.c_str());

  const auto sel_bellamy = core::select_scaleout(bellamy, tmpl, candidates, target_s);
  const auto sel_nnls = core::select_scaleout(nnls, tmpl, candidates, target_s);

  std::printf("scale_out\ttrue_mean_s\tbellamy_pred_s\tnnls_pred_s\n");
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::printf("%d\t\t%8.1f\t%8.1f\t%8.1f\n", candidates[i],
                target_ctx.mean_runtime_at(candidates[i]),
                sel_bellamy.predictions[i].predicted_runtime_s,
                sel_nnls.predictions[i].predicted_runtime_s);
  }

  auto report = [&](const char* name, const core::ResourceSelection& sel) {
    const double true_rt = target_ctx.mean_runtime_at(sel.chosen_scale_out);
    std::printf("%-8s -> %2d machines (predicted %.0f s, true %.0f s) %s target\n", name,
                sel.chosen_scale_out, sel.predicted_runtime_s, true_rt,
                true_rt <= target_s ? "MEETS" : "MISSES");
  };
  std::printf("\n");
  report("Bellamy", sel_bellamy);
  report("NNLS", sel_nnls);

  // Oracle choice for reference.
  int oracle = candidates.front();
  for (int x : candidates) {
    if (target_ctx.mean_runtime_at(x) <= target_s) {
      oracle = x;
      break;
    }
  }
  std::printf("oracle   -> %2d machines (true %.0f s)\n", oracle,
              target_ctx.mean_runtime_at(oracle));
  return 0;
}
