// Cross-environment reuse (paper §IV-C.2): a model pre-trained on public
// cloud traces is reused after "migrating" to a private cluster — different
// hardware, software stack and noise profile.  Compares the four reuse
// strategies and a from-scratch local model on the new environment.
//
// The reuse strategies run through the serve facade: ONE published base
// handle, one derive()d handle per strategy — all five share the same
// pretrained checkpoint object — each refit with a different strategy and
// queried through the shared PredictionService.  The local model keeps the
// legacy BellamyPredictor path, showing both worlds answer through the same
// data::RuntimeModel interface.

#include <cstdio>
#include <memory>

#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "core/variants.hpp"
#include "data/bell_generator.hpp"
#include "data/c3o_generator.hpp"
#include "eval/metrics.hpp"
#include "serve/serve.hpp"

using namespace bellamy;

int main() {
  // Old environment: public-cloud traces of grep across many contexts.
  data::C3OGeneratorConfig cloud_cfg;
  cloud_cfg.seed = 3;
  const data::Dataset cloud = data::C3OGenerator(cloud_cfg).generate_algorithm("grep", 10);

  // New environment: the private cluster, one context, scale-outs 4..60.
  const data::Dataset cluster = data::BellGenerator().generate_algorithm("grep");
  const auto target = cluster.contexts().front();

  core::BellamyModel pretrained(core::BellamyConfig{}, 5);
  core::PreTrainConfig pre;
  pre.epochs = 300;
  core::pretrain(pretrained, cloud.runs(), pre);
  std::printf("pre-trained on %zu cloud runs (%zu contexts)\n", cloud.size(),
              cloud.num_contexts());

  // A few observed runs on the new cluster (low scale-outs only — the
  // interesting question is extrapolating to bigger clusters).
  std::vector<data::JobRun> observed;
  for (const auto& r : target.runs) {
    if (r.scale_out <= 16 && observed.size() < 4) observed.push_back(r);
  }
  std::printf("observed %zu runs on the new cluster (scale-outs <= 16)\n\n", observed.size());

  core::FineTuneConfig fine;
  fine.max_epochs = 600;
  fine.patience = 300;

  serve::ModelRegistry registry;
  serve::PredictionService service(registry);
  const serve::ModelHandle base = registry.publish({"grep", "cloud"}, pretrained).unwrap();

  struct Row {
    std::string name;
    double mae;
    double seconds;
    std::size_t epochs;
  };
  std::vector<Row> rows;

  std::vector<data::JobRun> queries;
  for (const auto& r : target.runs) {
    if (r.scale_out > 16) queries.push_back(r);
  }

  auto evaluate = [&](const std::string& name, data::RuntimeModel& pred, double fit_seconds,
                      std::size_t epochs) {
    const auto predicted = pred.predict_batch(queries);  // one micro-batched pass
    eval::ErrorAccumulator acc;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      acc.add(predicted[i], queries[i].runtime_s);
    }
    rows.push_back({name, acc.stats().mae, fit_seconds, epochs});
  };

  {
    core::BellamyPredictor local(core::BellamyConfig{}, fine, 6, "local");
    local.fit(observed);
    evaluate("local (from scratch)", local, local.last_fit().fit_seconds,
             local.last_fit().epochs_run);
  }
  for (const auto strategy :
       {core::ReuseStrategy::kPartialUnfreeze, core::ReuseStrategy::kFullUnfreeze,
        core::ReuseStrategy::kPartialReset, core::ReuseStrategy::kFullReset}) {
    // A handle per strategy, all sharing the base checkpoint object.
    const serve::ModelHandle handle =
        registry.derive(base, {"grep", core::strategy_name(strategy)}).unwrap();
    serve::ServingModel pred(registry, service, handle, fine, strategy,
                             core::strategy_name(strategy));
    pred.fit(observed);
    evaluate(core::strategy_name(strategy), pred, pred.last_fit().fit_seconds,
             pred.last_fit().epochs_run);
  }

  std::printf("strategy\t\tMAE_on_large_scaleouts_s\tfit_s\tepochs\n");
  for (const auto& row : rows) {
    std::printf("%-22s\t%10.1f\t\t%6.3f\t%zu\n", row.name.c_str(), row.mae, row.seconds,
                row.epochs);
  }
  std::printf("\npaper's observation: reuse does not always win on error, but pre-trained\n"
              "variants fit noticeably faster than local training in the new environment.\n");
  return 0;
}
