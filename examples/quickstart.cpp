// Quickstart: the smallest end-to-end Bellamy workflow, through the
// bellamy::serve facade.
//
//   1. Load (here: synthesize) historical dataflow job executions.
//   2. Pre-train a Bellamy model on all contexts of one algorithm and
//      publish it in a ModelRegistry under (job, context).
//   3. Refit the handle on a handful of runs from a brand-new context —
//      in the BACKGROUND (refit_async): the caller keeps serving on the old
//      weights until the fine-tune lands and hot-swaps atomically.
//   4. Predict runtimes for unseen scale-outs through the micro-batching
//      PredictionService (interactive QoS, adaptive flush deadline).
//
// Build & run:  ./build/examples/quickstart

#include <chrono>
#include <cstdio>

#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "serve/serve.hpp"

using namespace bellamy;

int main() {
  // 1. Historical executions of "sgd" across many contexts (in a real
  //    deployment: data::load_csv_file("my_traces.csv")).
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 7;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sgd", 8);
  std::printf("history: %zu runs across %zu contexts\n", history.size(),
              history.num_contexts());

  // Treat the last context as the "new" one the user is about to run in.
  const auto groups = history.contexts();
  const auto& new_context = groups.back();
  const data::Dataset pretrain_corpus = history.exclude_context(new_context.key);

  // 2. Pre-train on every other context, then publish the model.
  core::BellamyModel model(core::BellamyConfig{}, /*seed=*/42);
  core::PreTrainConfig pre;
  pre.epochs = 300;
  core::pretrain(model, pretrain_corpus.runs(), pre);
  std::printf("pre-trained on %zu runs from %zu contexts\n", pretrain_corpus.size(),
              pretrain_corpus.num_contexts());

  serve::ModelRegistry registry;
  serve::ServeOptions options;  // adaptive flush: coalesce bursts, answer trickles fast
  options.flush_deadline_min = std::chrono::microseconds(50);
  options.flush_deadline_max = std::chrono::microseconds(2000);
  serve::PredictionService service(registry, options);
  const serve::ModelHandle handle =
      registry.publish({"sgd", new_context.key}, model).unwrap();
  // This handle carries user-facing traffic: interactive class, high weight.
  service.set_qos(handle, serve::HandleQos{serve::QosClass::kInteractive, 4.0}).expect();

  // 3. Refit on the first three observed runs of the new context — queued on
  //    the shared thread pool, so this thread (and every serving thread)
  //    keeps going while the fine-tune runs.  The handle serves the OLD
  //    weights until the swap; duplicate requests filed while the job is
  //    still queued coalesce into one fine-tune.
  std::vector<data::JobRun> observed(new_context.runs.begin(), new_context.runs.begin() + 3);
  core::FineTuneConfig fine;  // paper defaults: cyclical LR, MAE <= 5 s target
  fine.max_epochs = 800;
  fine.patience = 400;
  auto refit = registry.refit_async(handle, observed, fine);
  std::printf("refit queued in the background (pending: %s)...\n",
              registry.refit_pending(handle) ? "yes" : "no");
  serve::ServeResult<core::FineTuneResult> refit_result = refit.get();  // demo: block here
  const core::FineTuneResult result = refit_result.unwrap();
  std::printf("refit for %zu epochs (best MAE %.1f s, %s)\n", result.epochs_run,
              result.best_mae_seconds,
              result.reached_target ? "target reached" : "stopped by patience/cap");

  // 4. Predict the full scale-out range of the new context.  The queries
  //    coalesce into one micro-batch inside the service.
  std::vector<data::JobRun> queries;
  for (int x : new_context.scale_outs()) {
    data::JobRun query = new_context.runs.front();
    query.scale_out = x;
    queries.push_back(query);
  }
  const std::vector<double> predicted = service.predict_many(handle, queries).unwrap();

  std::printf("\nscale_out\tpredicted_s\tactual_s (mean of repetitions)\n");
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::printf("%d\t\t%8.1f\t%8.1f\n", queries[i].scale_out, predicted[i],
                new_context.mean_runtime_at(queries[i].scale_out));
  }

  const serve::ServeMetrics metrics = service.metrics(handle).unwrap();
  std::printf("\nserved %llu requests in %llu micro-batch(es), mean fill %.1f, "
              "effective flush deadline %llu us\n",
              static_cast<unsigned long long>(metrics.responses),
              static_cast<unsigned long long>(metrics.batches), metrics.mean_batch_fill(),
              static_cast<unsigned long long>(metrics.effective_flush_deadline_us));
  return 0;
}
