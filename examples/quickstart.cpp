// Quickstart: the smallest end-to-end Bellamy workflow.
//
//   1. Load (here: synthesize) historical dataflow job executions.
//   2. Pre-train a Bellamy model on all contexts of one algorithm.
//   3. Fine-tune it on a handful of runs from a brand-new context.
//   4. Predict runtimes for unseen scale-outs.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/bellamy_model.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"

using namespace bellamy;

int main() {
  // 1. Historical executions of "sgd" across many contexts (in a real
  //    deployment: data::load_csv_file("my_traces.csv")).
  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 7;
  const data::Dataset history = data::C3OGenerator(gen_cfg).generate_algorithm("sgd", 8);
  std::printf("history: %zu runs across %zu contexts\n", history.size(),
              history.num_contexts());

  // Treat the last context as the "new" one the user is about to run in.
  const auto groups = history.contexts();
  const auto& new_context = groups.back();
  const data::Dataset pretrain_corpus = history.exclude_context(new_context.key);

  // 2. Pre-train on every other context.
  core::BellamyModel model(core::BellamyConfig{}, /*seed=*/42);
  core::PreTrainConfig pre;
  pre.epochs = 300;
  core::pretrain(model, pretrain_corpus.runs(), pre);
  std::printf("pre-trained on %zu runs from %zu contexts\n", pretrain_corpus.size(),
              pretrain_corpus.num_contexts());

  // 3. Fine-tune on the first three observed runs of the new context.
  std::vector<data::JobRun> observed(new_context.runs.begin(), new_context.runs.begin() + 3);
  core::FineTuneConfig fine;  // paper defaults: cyclical LR, MAE <= 5 s target
  fine.max_epochs = 800;
  fine.patience = 400;
  const auto result = core::finetune(model, observed, fine);
  std::printf("fine-tuned for %zu epochs (best MAE %.1f s, %s)\n", result.epochs_run,
              result.best_mae_seconds,
              result.reached_target ? "target reached" : "stopped by patience/cap");

  // 4. Predict the full scale-out range of the new context.
  std::printf("\nscale_out\tpredicted_s\tactual_s (mean of repetitions)\n");
  for (int x : new_context.scale_outs()) {
    data::JobRun query = new_context.runs.front();
    query.scale_out = x;
    const double predicted = model.predict_one(query);
    std::printf("%d\t\t%8.1f\t%8.1f\n", x, predicted, new_context.mean_runtime_at(x));
  }
  return 0;
}
