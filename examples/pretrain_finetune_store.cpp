// Collaborative model sharing through the serve facade: the workflow the
// paper sketches for public clouds — pre-train one model per algorithm,
// persist it in a shared store, and let later users open and refit the
// stored checkpoints instead of profiling from scratch (Fig. 1).
//
// The provider side publishes into a store-backed ModelRegistry and
// persists; the consumer side opens the same store, refits the handle on
// its own runs (hot-swap), and queries through the PredictionService.

#include <cstdio>
#include <filesystem>

#include "core/model_store.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "data/ground_truth.hpp"
#include "serve/serve.hpp"

using namespace bellamy;

int main() {
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "bellamy-shared-models").string();
  auto store = std::make_shared<core::ModelStore>(store_dir);
  std::printf("model store: %s\n\n", store_dir.c_str());

  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 99;
  const data::C3OGenerator generator(gen_cfg);

  // --- "Provider" side: pre-train, publish and persist one model per
  // algorithm.  The registry key is (job, context-tag).
  {
    serve::ModelRegistry registry(store);
    for (const auto& algo : {"grep", "sgd"}) {
      const data::Dataset history = generator.generate_algorithm(algo, 6);
      core::BellamyModel model(core::BellamyConfig{}, 1000 + util::fnv1a64(algo) % 1000);
      core::PreTrainConfig pre;
      pre.epochs = 250;
      const auto result = core::pretrain(model, history.runs(), pre);
      const serve::ModelHandle handle = registry.publish({algo, "c3o-v1"}, model).unwrap();
      registry.persist(handle).expect();
      std::printf("published %s/c3o-v1  (pre-train loss %.4f, in-sample MAE %.1f s)\n", algo,
                  result.final_loss, result.final_mae_seconds);
    }
  }

  std::printf("\nstore contents:\n");
  for (const auto& key : store->list()) std::printf("  %s\n", key.c_str());

  // --- "Consumer" side: a different process opens the shared store, fetches
  // the sgd model and adapts it to a new context.
  data::C3OGeneratorConfig consumer_cfg;
  consumer_cfg.seed = 555;  // different user, different context
  const data::Dataset own_runs =
      data::C3OGenerator(consumer_cfg).generate_algorithm("sgd", 1);
  const auto context = own_runs.contexts().front();
  std::vector<data::JobRun> observed(context.runs.begin(), context.runs.begin() + 4);

  serve::ModelRegistry registry(store);
  serve::PredictionService service(registry);
  const serve::ModelHandle handle = registry.open({"sgd", "c3o-v1"}).unwrap();

  core::FineTuneConfig fine;
  fine.max_epochs = 600;
  fine.patience = 300;
  const core::FineTuneResult result = registry.refit(handle, observed, fine).unwrap();
  std::printf("\nconsumer refit sgd/c3o-v1 on %zu own runs: %zu epochs, best MAE %.1f s\n",
              observed.size(), result.epochs_run, result.best_mae_seconds);

  std::printf("\nscale_out\tpredicted_s\tactual_mean_s\n");
  for (int x : context.scale_outs()) {
    data::JobRun query = context.runs.front();
    query.scale_out = x;
    std::printf("%d\t\t%8.1f\t%8.1f\n", x, service.predict(handle, query).unwrap(),
                context.mean_runtime_at(x));
  }

  // Typed errors instead of exception spelunking: a key that was never
  // published reports kUnknownModel with the path it looked at.
  const auto missing = registry.open({"pagerank", "c3o-v1"});
  std::printf("\nopen pagerank/c3o-v1 -> %s\n", missing.error_text().c_str());

  std::filesystem::remove_all(store_dir);
  return 0;
}
