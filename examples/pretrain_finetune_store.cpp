// Collaborative model sharing: the workflow the paper sketches for public
// clouds — pre-train one model per algorithm, persist it in a shared store,
// and let later users fine-tune from the stored checkpoints instead of
// profiling from scratch (Fig. 1).

#include <cstdio>
#include <filesystem>

#include "core/model_store.hpp"
#include "core/trainer.hpp"
#include "data/c3o_generator.hpp"
#include "data/ground_truth.hpp"

using namespace bellamy;

int main() {
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "bellamy-shared-models").string();
  core::ModelStore store(store_dir);
  std::printf("model store: %s\n\n", store_dir.c_str());

  data::C3OGeneratorConfig gen_cfg;
  gen_cfg.seed = 99;
  const data::C3OGenerator generator(gen_cfg);

  // --- "Provider" side: pre-train and publish one model per algorithm. ----
  for (const auto& algo : {"grep", "sgd"}) {
    const data::Dataset history = generator.generate_algorithm(algo, 6);
    core::BellamyModel model(core::BellamyConfig{}, 1000 + util::fnv1a64(algo) % 1000);
    core::PreTrainConfig pre;
    pre.epochs = 250;
    const auto result = core::pretrain(model, history.runs(), pre);
    store.save(model, algo, "c3o-v1");
    std::printf("published %s/c3o-v1  (pre-train loss %.4f, in-sample MAE %.1f s)\n", algo,
                result.final_loss, result.final_mae_seconds);
  }

  std::printf("\nstore contents:\n");
  for (const auto& key : store.list()) std::printf("  %s\n", key.c_str());

  // --- "Consumer" side: fetch the sgd model and adapt it to a new context.
  data::C3OGeneratorConfig consumer_cfg;
  consumer_cfg.seed = 555;  // different user, different context
  const data::Dataset own_runs =
      data::C3OGenerator(consumer_cfg).generate_algorithm("sgd", 1);
  const auto context = own_runs.contexts().front();
  std::vector<data::JobRun> observed(context.runs.begin(), context.runs.begin() + 4);

  core::BellamyModel model = store.load("sgd", "c3o-v1");
  core::FineTuneConfig fine;
  fine.max_epochs = 600;
  fine.patience = 300;
  const auto result = core::finetune(model, observed, fine);
  std::printf("\nconsumer fine-tuned sgd/c3o-v1 on %zu own runs: %zu epochs, best MAE %.1f s\n",
              observed.size(), result.epochs_run, result.best_mae_seconds);

  std::printf("\nscale_out\tpredicted_s\tactual_mean_s\n");
  for (int x : context.scale_outs()) {
    data::JobRun query = context.runs.front();
    query.scale_out = x;
    std::printf("%d\t\t%8.1f\t%8.1f\n", x, model.predict_one(query),
                context.mean_runtime_at(x));
  }

  std::filesystem::remove_all(store_dir);
  return 0;
}
